"""Unit + integration tests for follow-up study comparison."""

import numpy as np
import pytest

from repro.cad.longitudinal import (
    ProgressionReport,
    assess_progression,
    change_map,
    lesion_burden,
)


class TestChangeMap:
    def test_absolute_difference(self):
        a = np.zeros((3, 3))
        b = np.full((3, 3), 2.0)
        assert np.all(change_map(a, b) == 2.0)

    def test_relative_scaling(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 2.0, size=(50, 50))
        b = a + 2.0
        rel = change_map(a, b, relative=True)
        assert rel.mean() == pytest.approx(2.0 / a.std(), rel=1e-6)

    def test_constant_baseline_relative(self):
        a = np.ones((4, 4))
        b = np.full((4, 4), 5.0)
        assert np.all(change_map(a, b, relative=True) == 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            change_map(np.zeros((2, 2)), np.zeros((3, 3)))


class TestLesionBurden:
    def test_burden_counts(self):
        m = np.array([[0.9, 0.1], [0.7, 0.2]])
        b = lesion_burden(m, threshold=0.5)
        assert b["positive_positions"] == 2
        assert b["volume_fraction"] == pytest.approx(0.5)
        assert b["max_score"] == pytest.approx(0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lesion_burden(np.zeros((0,)))


class TestAssessProgression:
    def grown(self, frac0, frac1, n=100):
        rng = np.random.default_rng(1)
        a = (rng.random(n) < frac0).astype(float)
        b = (rng.random(n) < frac1).astype(float)
        return a, b

    def test_progression(self):
        a = np.zeros(100)
        a[:10] = 1.0
        b = np.zeros(100)
        b[:30] = 1.0
        report = assess_progression(a, b)
        assert report.status == "progression"
        assert report.volume_change == pytest.approx(2.0)
        assert "progression" in str(report)

    def test_regression(self):
        a = np.zeros(100)
        a[:30] = 1.0
        b = np.zeros(100)
        b[:10] = 1.0
        assert assess_progression(a, b).status == "regression"

    def test_stable(self):
        a = np.zeros(100)
        a[:20] = 1.0
        b = np.zeros(100)
        b[:22] = 1.0
        assert assess_progression(a, b).status == "stable"

    def test_new_lesion_is_progression(self):
        a = np.zeros(50)
        b = np.zeros(50)
        b[0] = 1.0
        report = assess_progression(a, b)
        assert report.status == "progression"
        assert report.volume_change == np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            assess_progression(np.zeros(4), np.zeros(5))
        with pytest.raises(ValueError):
            assess_progression(np.zeros(4), np.zeros(4), stability_margin=-1)


class TestEndToEndFollowUp:
    def test_growing_lesion_detected_as_progression(self):
        """Full workflow: two studies of the same patient, lesion grows."""
        from repro.cad import TextureClassifier, TrainConfig, build_dataset
        from repro.core import HaralickConfig, haralick_transform
        from repro.data import Lesion, PhantomConfig, generate_phantom

        hc = HaralickConfig(roi_shape=(5, 5, 3, 2), levels=16)

        def study(radius, seed):
            lesion = Lesion(center=(12, 12, 5), radius=radius, amplitude=0.9,
                            uptake_rate=1.2)
            return PhantomConfig(
                shape=(24, 24, 10, 5), lesions=(lesion,), seed=seed,
                noise_sigma=0.01,
            )

        # Train on the baseline study.
        base_pc = study(radius=4.0, seed=0)
        ds = build_dataset(base_pc, hc)
        clf = TextureClassifier(ds.feature_names, hidden=(12,), seed=0)
        clf.fit(ds.balanced_subsample(150, seed=1), TrainConfig(epochs=80, seed=0))

        def detection_map(pc):
            vol = generate_phantom(pc)
            feats = haralick_transform(vol.data, hc)
            return clf.detection_map(feats)

        followup_pc = study(radius=6.5, seed=3)  # grown lesion, new visit
        report = assess_progression(detection_map(base_pc), detection_map(followup_pc))
        assert report.status == "progression"
        assert report.followup["volume_fraction"] > report.baseline["volume_fraction"]

"""Unit tests for the from-scratch MLP."""

import numpy as np
import pytest

from repro.cad.network import MLP, TrainConfig


class TestConstruction:
    def test_layer_shapes(self):
        mlp = MLP([4, 8, 3, 1])
        assert [w.shape for w in mlp.weights] == [(4, 8), (8, 3), (3, 1)]
        assert [b.shape for b in mlp.biases] == [(8,), (3,), (1,)]

    @pytest.mark.parametrize("sizes", [[4], [4, 2], [4, 0, 1], [0, 1]])
    def test_invalid_sizes(self, sizes):
        with pytest.raises(ValueError):
            MLP(sizes)

    def test_deterministic_init(self):
        a, b = MLP([3, 4, 1], seed=7), MLP([3, 4, 1], seed=7)
        for wa, wb in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)


class TestInference:
    def test_probabilities_in_range(self):
        mlp = MLP([3, 5, 1])
        x = np.random.default_rng(0).normal(size=(20, 3))
        p = mlp.predict_proba(x)
        assert p.shape == (20,)
        assert np.all((p > 0) & (p < 1))

    def test_predict_threshold(self):
        mlp = MLP([2, 1], seed=0)
        x = np.zeros((4, 2))
        assert set(mlp.predict(x, threshold=0.0)) == {1}
        assert set(mlp.predict(x, threshold=1.1)) == {0}

    def test_wrong_feature_count(self):
        with pytest.raises(ValueError):
            MLP([3, 1]).predict_proba(np.zeros((2, 5)))

    def test_sigmoid_extreme_inputs_stable(self):
        mlp = MLP([1, 1], seed=0)
        mlp.weights[0][:] = 100.0
        p = mlp.predict_proba(np.array([[1000.0], [-1000.0]]))
        assert np.isfinite(p).all()


class TestTraining:
    def test_learns_linearly_separable(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        mlp = MLP([2, 8, 1], seed=0)
        losses = mlp.fit(x, y, TrainConfig(epochs=80, seed=0))
        assert losses[-1] < 0.25
        assert (mlp.predict(x) == y).mean() > 0.92

    def test_learns_xor(self):
        """Non-linear boundary requires the hidden layer to work."""
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        x = np.repeat(x, 50, axis=0)
        y = np.repeat(np.array([0, 1, 1, 0]), 50)
        mlp = MLP([2, 12, 1], seed=3)
        mlp.fit(x, y, TrainConfig(epochs=600, learning_rate=0.1, seed=0))
        assert (mlp.predict(x) == y).mean() > 0.95

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 3))
        y = (x[:, 0] > 0).astype(int)
        mlp = MLP([3, 6, 1], seed=0)
        losses = mlp.fit(x, y, TrainConfig(epochs=40, seed=0))
        assert losses[-1] < losses[0]

    def test_deterministic_training(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 2))
        y = (x.sum(axis=1) > 0).astype(int)
        results = []
        for _ in range(2):
            mlp = MLP([2, 4, 1], seed=5)
            mlp.fit(x, y, TrainConfig(epochs=10, seed=5))
            results.append(mlp.predict_proba(x))
        assert np.array_equal(results[0], results[1])

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            MLP([2, 1]).fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLP([2, 1]).fit(np.zeros((3, 2)), np.array([0, 1]))

    @pytest.mark.parametrize(
        "kwargs", [dict(epochs=0), dict(learning_rate=0), dict(momentum=1.0)]
    )
    def test_train_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)

"""Unit tests for overlapped chunk partitioning (paper Eqs. 1-2)."""

import numpy as np
import pytest

from repro.chunks.chunking import ChunkSpec, overlap, partition, partition_grid_shape
from repro.core.roi import ROISpec, valid_positions_shape


class TestOverlapEquation:
    @pytest.mark.parametrize("r", [1, 2, 5, 16])
    def test_eq_1_and_2(self, r):
        assert overlap(r) == r - 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            overlap(0)


class TestPartition2D:
    def test_adjacent_chunks_overlap_by_roi_minus_one(self):
        roi = ROISpec((5, 3))
        chunks = partition((100, 100), roi, (30, 20))
        by_index = {c.index: c for c in chunks}
        a, b = by_index[(0, 0)], by_index[(1, 0)]
        assert a.hi[0] - b.lo[0] == overlap(5)  # x overlap = 4
        a, b = by_index[(0, 0)], by_index[(0, 1)]
        assert a.hi[1] - b.lo[1] == overlap(3)  # y overlap = 2

    def test_interior_chunk_has_requested_shape(self):
        chunks = partition((100, 100), ROISpec((5, 3)), (30, 20))
        by_index = {c.index: c for c in chunks}
        assert by_index[(0, 0)].shape == (30, 20)
        assert by_index[(1, 1)].shape == (30, 20)

    def test_ownership_tiles_output_exactly(self):
        shape, roi = (53, 47), ROISpec((5, 4))
        out = np.zeros(valid_positions_shape(shape, roi), dtype=int)
        for c in partition(shape, roi, (20, 15)):
            out[c.own_slices()] += 1
        assert np.all(out == 1)

    def test_every_owned_roi_fits_in_chunk_input(self):
        shape, roi = (53, 47), ROISpec((5, 4))
        for c in partition(shape, roi, (20, 15)):
            for d in range(2):
                assert c.own_lo[d] >= c.lo[d]
                assert c.own_hi[d] - 1 + roi.shape[d] <= c.hi[d]
                assert c.hi[d] <= shape[d]


class TestPartition4D:
    def test_paper_chunking(self):
        """Paper setup: 256x256x32x32 data, 5x5x5x3 ROI, 50x50x32x32 chunks."""
        shape = (256, 256, 32, 32)
        roi = ROISpec((5, 5, 5, 3))
        chunk_shape = (50, 50, 32, 32)
        grid = partition_grid_shape(shape, roi, chunk_shape)
        # x/y: 252 outputs / 46 stride -> 6 chunks; z: 28/28 -> 1; t: 30/30 -> 1.
        assert grid == (6, 6, 1, 1)
        chunks = partition(shape, roi, chunk_shape)
        assert len(chunks) == 36
        out = np.zeros(valid_positions_shape(shape, roi), dtype=np.int8)
        for c in chunks:
            out[c.own_slices()] += 1
        assert np.all(out == 1)

    def test_num_rois_sum(self):
        shape, roi = (40, 30, 10, 6), ROISpec((5, 5, 5, 3))
        chunks = partition(shape, roi, (20, 20, 10, 6))
        total = sum(c.num_rois for c in chunks)
        assert total == int(np.prod(valid_positions_shape(shape, roi)))

    def test_local_own_slices_consistency(self):
        shape, roi = (30, 30, 8, 5), ROISpec((3, 3, 3, 2))
        data = np.random.default_rng(0).integers(0, 100, size=shape)
        for c in partition(shape, roi, (12, 12, 8, 5)):
            local = data[c.slices()]
            assert local.shape == c.shape
            # Local scan output indexing must line up with global origins.
            sel = c.local_own_slices(roi)
            for d in range(4):
                assert sel[d].start == c.own_lo[d] - c.lo[d]
                assert sel[d].stop == c.own_hi[d] - c.lo[d]


class TestValidation:
    def test_chunk_smaller_than_roi_rejected(self):
        with pytest.raises(ValueError):
            partition((50, 50), ROISpec((5, 5)), (4, 10))

    def test_roi_too_big_rejected(self):
        with pytest.raises(ValueError):
            partition((4, 50), ROISpec((5, 5)), (5, 10))

    def test_ndim_mismatch(self):
        with pytest.raises(ValueError):
            partition((50, 50, 50), ROISpec((5, 5)), (10, 10))

    def test_single_chunk_degenerate(self):
        shape, roi = (10, 10), ROISpec((3, 3))
        chunks = partition(shape, roi, (10, 10))
        assert len(chunks) == 1
        c = chunks[0]
        assert c.lo == (0, 0) and c.hi == (10, 10)
        assert c.own_shape == (8, 8)
        assert c.num_voxels == 100 and c.num_rois == 64

"""Unit tests for chunk assembly (IIC) and output stitching (HIC)."""

import numpy as np
import pytest

from repro.chunks.chunking import partition
from repro.chunks.stitch import ChunkAssembler, ChunkPiece, OutputStitcher
from repro.core.raster import raster_scan
from repro.core.roi import ROISpec, valid_positions_shape


def make_chunk(shape=(12, 10, 6, 4), roi=ROISpec((3, 3, 3, 2)), chunk_shape=(12, 10, 6, 4)):
    return partition(shape, roi, chunk_shape)[0]


def split_into_pieces(chunk, data, node_of, num_nodes):
    """Mimic per-node RFR reads: zero-filled arrays + filled plane lists."""
    pieces = []
    z0, t0 = chunk.lo[2], chunk.lo[3]
    for n in range(num_nodes):
        piece_data = np.zeros(chunk.shape, dtype=data.dtype)
        filled = []
        for t in range(chunk.lo[3], chunk.hi[3]):
            for z in range(chunk.lo[2], chunk.hi[2]):
                if node_of(t, z) == n:
                    piece_data[:, :, z - z0, t - t0] = data[
                        chunk.lo[0] : chunk.hi[0], chunk.lo[1] : chunk.hi[1], z, t
                    ]
                    filled.append((t, z))
        pieces.append(ChunkPiece(chunk.index, piece_data, filled, source_node=n))
    return pieces


class TestChunkAssembler:
    def test_assembles_distributed_pieces(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 100, size=(12, 10, 6, 4))
        chunk = make_chunk()
        pieces = split_into_pieces(chunk, data, lambda t, z: (t * 6 + z) % 3, 3)
        asm = ChunkAssembler(chunk)
        for p in pieces:
            asm.add(p)
        assert asm.is_complete
        assert np.array_equal(asm.result(), data)

    def test_order_independent(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 100, size=(12, 10, 6, 4))
        chunk = make_chunk()
        pieces = split_into_pieces(chunk, data, lambda t, z: (t + z) % 2, 2)
        asm = ChunkAssembler(chunk)
        for p in reversed(pieces):
            asm.add(p)
        assert np.array_equal(asm.result(), data)

    def test_incomplete_raises(self):
        chunk = make_chunk()
        asm = ChunkAssembler(chunk)
        assert not asm.is_complete
        assert len(asm.missing) == 6 * 4
        with pytest.raises(RuntimeError):
            asm.result()

    def test_duplicate_plane_rejected(self):
        chunk = make_chunk()
        data = np.zeros((12, 10, 6, 4), dtype=int)
        pieces = split_into_pieces(chunk, data, lambda t, z: 0, 1)
        asm = ChunkAssembler(chunk)
        asm.add(pieces[0])
        with pytest.raises(ValueError):
            asm.add(pieces[0])

    def test_wrong_chunk_rejected(self):
        chunks = partition((30, 10, 6, 4), ROISpec((3, 3, 3, 2)), (12, 10, 6, 4))
        asm = ChunkAssembler(chunks[0])
        piece = ChunkPiece(chunks[1].index, np.zeros(chunks[1].shape, dtype=int), [])
        with pytest.raises(ValueError):
            asm.add(piece)

    def test_wrong_shape_rejected(self):
        chunk = make_chunk()
        with pytest.raises(ValueError):
            ChunkAssembler(chunk).add(
                ChunkPiece(chunk.index, np.zeros((2, 2, 2, 2), dtype=int), [])
            )


class TestOutputStitcher:
    def test_stitched_equals_sequential(self):
        """Chunked scan + stitch == whole-volume raster scan."""
        rng = np.random.default_rng(2)
        shape, roi = (20, 18, 8, 5), ROISpec((3, 3, 3, 2))
        data = rng.integers(0, 8, size=shape)
        want = raster_scan(data, roi, 8, features=["asm", "contrast"])

        stitcher = OutputStitcher(shape, roi, ["asm", "contrast"])
        for chunk in partition(shape, roi, (9, 9, 6, 4)):
            local = raster_scan(data[chunk.slices()], roi, 8, features=["asm", "contrast"])
            stitcher.place(chunk, local)
        assert stitcher.is_complete
        got = stitcher.result()
        np.testing.assert_allclose(got["asm"], want["asm"])
        np.testing.assert_allclose(got["contrast"], want["contrast"])

    def test_incomplete_raises(self):
        stitcher = OutputStitcher((10, 10), ROISpec((3, 3)), ["asm"])
        assert stitcher.coverage == 0.0
        with pytest.raises(RuntimeError):
            stitcher.result()

    def test_double_place_rejected(self):
        shape, roi = (10, 10), ROISpec((3, 3))
        chunk = partition(shape, roi, (10, 10))[0]
        stitcher = OutputStitcher(shape, roi, ["asm"])
        vals = {"asm": np.zeros((8, 8))}
        stitcher.place(chunk, vals)
        with pytest.raises(ValueError):
            stitcher.place(chunk, vals)

    def test_wrong_features_rejected(self):
        shape, roi = (10, 10), ROISpec((3, 3))
        chunk = partition(shape, roi, (10, 10))[0]
        stitcher = OutputStitcher(shape, roi, ["asm"])
        with pytest.raises(ValueError):
            stitcher.place(chunk, {"contrast": np.zeros((8, 8))})

    def test_wrong_local_shape_rejected(self):
        shape, roi = (10, 10), ROISpec((3, 3))
        chunk = partition(shape, roi, (10, 10))[0]
        stitcher = OutputStitcher(shape, roi, ["asm"])
        with pytest.raises(ValueError):
            stitcher.place(chunk, {"asm": np.zeros((5, 5))})

    def test_minmax_for_jiw_normalization(self):
        shape, roi = (10, 10), ROISpec((3, 3))
        chunk = partition(shape, roi, (10, 10))[0]
        stitcher = OutputStitcher(shape, roi, ["asm"])
        vals = np.linspace(0.25, 0.75, 64).reshape(8, 8)
        stitcher.place(chunk, {"asm": vals})
        lo, hi = stitcher.minmax("asm")
        assert lo == pytest.approx(0.25) and hi == pytest.approx(0.75)

    def test_empty_features_rejected(self):
        with pytest.raises(ValueError):
            OutputStitcher((10, 10), ROISpec((3, 3)), [])

"""Unit tests for the high-level sequential API."""

import numpy as np
import pytest

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.features import PAPER_FEATURES


class TestHaralickConfig:
    def test_paper_defaults(self):
        cfg = HaralickConfig()
        assert cfg.roi_shape == (5, 5, 5, 3)
        assert cfg.levels == 32
        assert cfg.features == PAPER_FEATURES
        assert cfg.distance == 1

    def test_output_shape(self):
        cfg = HaralickConfig()
        assert cfg.output_shape((256, 256, 32, 32)) == (252, 252, 28, 30)

    def test_invalid_feature(self):
        with pytest.raises(KeyError):
            HaralickConfig(features=("nope",))

    def test_empty_features(self):
        with pytest.raises(ValueError):
            HaralickConfig(features=())

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            HaralickConfig(distance=0)

    def test_frozen(self):
        cfg = HaralickConfig()
        with pytest.raises(Exception):
            cfg.levels = 16


class TestHaralickTransform:
    def test_raw_data_is_quantized(self):
        rng = np.random.default_rng(0)
        raw = rng.integers(0, 65536, size=(8, 8, 6, 4)).astype(np.uint16)
        out = haralick_transform(raw, HaralickConfig(roi_shape=(3, 3, 3, 2), levels=8))
        assert out["asm"].shape == (6, 6, 4, 3)

    def test_quantized_passthrough(self):
        rng = np.random.default_rng(1)
        q = rng.integers(0, 8, size=(8, 8))
        cfg = HaralickConfig(roi_shape=(3, 3), levels=8)
        out = haralick_transform(q, cfg, quantized=True)
        from repro.core.raster import raster_scan
        from repro.core.roi import ROISpec

        want = raster_scan(q, ROISpec((3, 3)), 8)
        np.testing.assert_allclose(out["asm"], want["asm"])

    def test_quantized_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            haralick_transform(
                np.full((8, 8), 99),
                HaralickConfig(roi_shape=(3, 3), levels=8),
                quantized=True,
            )

    def test_ndim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            haralick_transform(np.zeros((8, 8)), HaralickConfig())

    def test_2d_config_works(self):
        """The library is N-dimensional; 2D is the classic Haralick case."""
        rng = np.random.default_rng(2)
        img = rng.random((16, 16))
        out = haralick_transform(
            img, HaralickConfig(roi_shape=(7, 7), levels=16, features=("entropy",))
        )
        assert out["entropy"].shape == (10, 10)
        assert np.all(out["entropy"] >= 0)

"""Unit tests for the pluggable GLCM scan-backend layer."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.backends import (
    DEFAULT_KERNEL,
    KERNEL_INFO,
    KERNELS,
    get_kernel,
    incremental_scan,
    megabatch_scan,
    reference_scan,
)
from repro.core.cooccurrence import check_levels, cooccurrence_scan
from repro.core.raster import raster_scan, raster_scan_reference
from repro.core.roi import ROISpec
from repro.core.workspace import pair_shift, symmetric_index, symmetrize_inplace
from repro.filters.messages import TextureParams

# The "gpu" entry participates in the generic registry loops below; on a
# machine without a CUDA device it falls back to megabatch with a warning
# (the warning itself is covered in tests/core/test_gpu_backend.py).
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.core.gpu.GpuUnavailableWarning"
)


@pytest.fixture(scope="module")
def small_volume():
    rng = np.random.default_rng(7)
    return rng.integers(0, 16, size=(8, 7, 6, 5), dtype=np.int32)


class TestRegistry:
    def test_kernels_contents(self):
        assert KERNELS == (
            "batched", "gpu", "incremental", "megabatch", "reference"
        )
        assert DEFAULT_KERNEL in KERNELS
        assert set(KERNEL_INFO) == set(KERNELS)

    def test_get_kernel_resolves(self):
        assert get_kernel("batched") is cooccurrence_scan
        assert get_kernel("incremental") is incremental_scan
        assert get_kernel("megabatch") is megabatch_scan
        assert get_kernel("reference") is reference_scan

    def test_get_kernel_unknown(self):
        with pytest.raises(ValueError, match="unknown scan kernel"):
            get_kernel("turbo")

    def test_get_kernel_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'incremental'"):
            get_kernel("incrmental")
        with pytest.raises(ValueError, match="did you mean 'megabatch'"):
            get_kernel("megabatched")
        # Nothing close: no suggestion, but the valid list is shown.
        with pytest.raises(ValueError, match=r"valid kernels") as exc:
            get_kernel("turbo")
        assert "did you mean" not in str(exc.value)

    def test_config_validates_kernel(self):
        with pytest.raises(ValueError, match="unknown scan kernel"):
            HaralickConfig(kernel="turbo")
        with pytest.raises(ValueError, match="unknown scan kernel"):
            TextureParams(kernel="turbo")
        assert HaralickConfig().kernel == DEFAULT_KERNEL
        assert TextureParams().kernel == DEFAULT_KERNEL


class TestDispatch:
    def test_raster_scan_kernel_equality(self, small_volume):
        roi = ROISpec((3, 3, 3, 2))
        outs = {
            k: raster_scan(small_volume, roi, 16, kernel=k) for k in KERNELS
        }
        # Identical matrices through identical feature kernels: the
        # backend choice must be invisible, down to the last bit.
        for kernel in KERNELS:
            for name, vol in outs["reference"].items():
                assert np.array_equal(outs[kernel][name], vol), (kernel, name)
        # Against the per-window reference *feature* path the reduction
        # order differs, so only closeness is promised (as in test_raster).
        ref = raster_scan_reference(small_volume, roi, 16)
        for name, vol in ref.items():
            np.testing.assert_allclose(outs["batched"][name], vol, atol=1e-12)

    def test_haralick_transform_kernel_equality(self, small_volume):
        outs = {
            k: haralick_transform(
                small_volume,
                HaralickConfig(roi_shape=(3, 3, 3, 2), levels=16, kernel=k),
                quantized=True,
            )
            for k in KERNELS
        }
        for k in KERNELS:
            for name in outs["reference"]:
                assert np.array_equal(outs[k][name], outs["reference"][name])

    def test_cli_kernel_flag(self):
        parser = build_parser()
        assert parser.parse_args(["analyze", "d"]).kernel == DEFAULT_KERNEL
        for k in KERNELS:
            assert parser.parse_args(["analyze", "d", "--kernel", k]).kernel == k
        with pytest.raises(SystemExit):
            parser.parse_args(["analyze", "d", "--kernel", "turbo"])


class TestValidation:
    def test_check_levels_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_levels(np.array([[0, 8]]), 8)
        with pytest.raises(ValueError):
            check_levels(np.array([[-1, 0]]), 8)
        check_levels(np.array([[0, 7]]), 8)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_scan_validate_gating(self, kernel):
        bad = np.full((4, 4), 9, dtype=np.int32)  # out of range for levels=8
        scan = get_kernel(kernel)
        with pytest.raises(ValueError):
            list(scan(bad, ROISpec((2, 2)), 8))
        # validate=False skips the data range check (caller's contract).
        list(scan(bad % 8, ROISpec((2, 2)), 8, validate=False))


class TestWorkspace:
    def test_pair_shift_values_and_readonly(self):
        arr = pair_shift(5, 9)
        assert arr.shape == (5, 1)
        assert np.array_equal(arr[:, 0], np.arange(5) * 9)
        assert not arr.flags.writeable

    def test_pair_shift_cache_growth(self):
        small = pair_shift(3, 11)
        big = pair_shift(300, 11)
        assert np.array_equal(big[:3], small)
        # A smaller request after growth reuses the grown allocation.
        again = pair_shift(3, 11)
        assert again.base is big.base or again.base is big

    def test_symmetric_index_readonly(self):
        iu, ju, diag = symmetric_index(6)
        assert not iu.flags.writeable
        assert np.array_equal(diag, np.arange(6))
        assert iu.size == 6 * 5 // 2

    def test_symmetrize_inplace_matches_transpose_add(self):
        rng = np.random.default_rng(3)
        mats = rng.integers(0, 50, size=(4, 7, 7)).astype(np.int64)
        want = mats + mats.transpose(0, 2, 1)
        got = symmetrize_inplace(mats)
        assert got is mats
        assert np.array_equal(got, want)

    def test_symmetrize_inplace_single_level(self):
        mats = np.full((2, 1, 1), 3, dtype=np.int64)
        assert np.array_equal(symmetrize_inplace(mats), np.full((2, 1, 1), 6))

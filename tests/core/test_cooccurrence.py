"""Unit tests for co-occurrence matrix computation."""

import numpy as np
import pytest

from repro.core.cooccurrence import (
    cooccurrence_matrix,
    cooccurrence_scan,
    pair_code_array,
    resolve_directions,
)
from repro.core.roi import ROISpec, valid_positions_shape


def brute_force_glcm(window, levels, directions, symmetric=True):
    """Independent O(n * d) reference: explicit pair enumeration."""
    window = np.asarray(window)
    out = np.zeros((levels, levels), dtype=np.int64)
    for v in directions:
        for idx in np.ndindex(window.shape):
            jdx = tuple(i + c for i, c in zip(idx, v))
            if all(0 <= j < s for j, s in zip(jdx, window.shape)):
                out[window[idx], window[jdx]] += 1
    if symmetric:
        out = out + out.T
    return out


class TestCooccurrenceMatrix:
    def test_known_2d_example(self):
        # Classic Haralick-style toy image.
        img = np.array([[0, 0, 1, 1], [0, 0, 1, 1], [0, 2, 2, 2], [2, 2, 3, 3]])
        m = cooccurrence_matrix(img, 4, directions=[(0, 1)])  # horizontal
        # Pairs (a, b) one step right, counted symmetrically.
        expected = np.array(
            [[4, 2, 1, 0], [2, 4, 0, 0], [1, 0, 6, 1], [0, 0, 1, 2]], dtype=np.int64
        )
        assert np.array_equal(m, m.T)
        assert np.array_equal(m, expected)

    @pytest.mark.parametrize("ndim", [2, 3, 4])
    def test_matches_brute_force_all_directions(self, ndim):
        rng = np.random.default_rng(ndim)
        shape = (6, 5, 4, 3)[:ndim]
        window = rng.integers(0, 5, size=shape)
        dirs = resolve_directions(ndim, None, 1)
        got = cooccurrence_matrix(window, 5)
        want = brute_force_glcm(window, 5, dirs)
        assert np.array_equal(got, want)

    def test_symmetry_property(self):
        rng = np.random.default_rng(7)
        window = rng.integers(0, 8, size=(5, 5, 5, 3))
        m = cooccurrence_matrix(window, 8)
        assert np.array_equal(m, m.T)

    def test_always_g_by_g(self):
        """Paper Property 3: size fixed by G, independent of direction."""
        window = np.zeros((4, 4), dtype=int)
        for g in (2, 16, 32, 64):
            assert cooccurrence_matrix(window, g).shape == (g, g)

    def test_opposite_directions_equal(self):
        """Paper Property 1: v and -v give the same matrix."""
        rng = np.random.default_rng(3)
        window = rng.integers(0, 6, size=(6, 6))
        a = cooccurrence_matrix(window, 6, directions=[(1, -1)])
        b = cooccurrence_matrix(window, 6, directions=[(-1, 1)])
        assert np.array_equal(a, b)

    def test_distance_scaling(self):
        img = np.array([[0, 1, 0, 1]])
        # Distance 2 horizontally pairs equal values only: (0->0, 1->1),
        # each counted once per order (symmetric).
        m = cooccurrence_matrix(img, 2, directions=[(0, 1)], distance=2)
        assert m[0, 0] == 2 and m[1, 1] == 2 and m[0, 1] == 0

    def test_total_count(self):
        # n pixels in a row, one direction, symmetric: 2*(n-1) pairs.
        img = np.arange(7).reshape(1, 7) % 3
        m = cooccurrence_matrix(img, 3, directions=[(0, 1)])
        assert m.sum() == 2 * 6

    def test_asymmetric_mode(self):
        img = np.array([[0, 1]])
        m = cooccurrence_matrix(img, 2, directions=[(0, 1)], symmetric=False)
        assert m[0, 1] == 1 and m[1, 0] == 0

    def test_direction_longer_than_window_skipped(self):
        img = np.array([[0, 1]])
        m = cooccurrence_matrix(img, 2, directions=[(1, 0)])  # no vertical room
        assert m.sum() == 0

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.array([[0, 9]]), 4)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.zeros((2, 2), int), 4, directions=[(0, 0)])

    def test_wrong_direction_ndim_rejected(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.zeros((2, 2), int), 4, directions=[(1, 0, 0)])


class TestPairCodeArray:
    def test_codes_and_shape(self):
        data = np.array([[0, 1], [2, 3]])
        codes, lo = pair_code_array(data, 4, (0, 1))
        assert codes.shape == (2, 1)
        assert lo == (0, 0)
        assert codes[0, 0] == 0 * 4 + 1
        assert codes[1, 0] == 2 * 4 + 3

    def test_negative_component_offset(self):
        data = np.array([[0, 1], [2, 3]])
        codes, lo = pair_code_array(data, 4, (0, -1))
        assert lo == (0, 1)
        assert codes[0, 0] == 1 * 4 + 0


class TestCooccurrenceScan:
    @pytest.mark.parametrize(
        "shape,roi_shape",
        [((8, 8), (3, 3)), ((6, 5, 4), (3, 3, 2)), ((6, 6, 5, 4), (3, 3, 3, 2))],
    )
    def test_matches_per_window_kernel(self, shape, roi_shape):
        rng = np.random.default_rng(42)
        data = rng.integers(0, 6, size=shape)
        roi = ROISpec(roi_shape)
        grid = valid_positions_shape(shape, roi)
        npos = int(np.prod(grid))
        collected = np.zeros((npos, 6, 6), dtype=np.int64)
        for start, mats in cooccurrence_scan(data, roi, 6, batch=7):
            collected[start : start + mats.shape[0]] = mats
        for k, origin in enumerate(np.ndindex(grid)):
            window = data[tuple(slice(o, o + r) for o, r in zip(origin, roi_shape))]
            want = cooccurrence_matrix(window, 6)
            assert np.array_equal(collected[k], want), f"mismatch at {origin}"

    def test_batch_boundaries(self):
        data = np.random.default_rng(0).integers(0, 4, size=(5, 5))
        roi = ROISpec((2, 2))
        starts = [s for s, _ in cooccurrence_scan(data, roi, 4, batch=5)]
        assert starts == [0, 5, 10, 15]

    def test_single_position(self):
        data = np.random.default_rng(1).integers(0, 4, size=(3, 3))
        roi = ROISpec((3, 3))
        batches = list(cooccurrence_scan(data, roi, 4))
        assert len(batches) == 1
        assert batches[0][1].shape == (1, 4, 4)
        assert np.array_equal(batches[0][1][0], cooccurrence_matrix(data, 4))

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            list(cooccurrence_scan(np.zeros((4, 4), int), ROISpec((2, 2)), 4, batch=0))

    def test_roi_larger_than_data(self):
        with pytest.raises(ValueError):
            list(cooccurrence_scan(np.zeros((2, 2), int), ROISpec((3, 3)), 4))

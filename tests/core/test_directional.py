"""Unit tests for per-direction Haralick statistics."""

import numpy as np
import pytest

from repro.core.directional import (
    anisotropy,
    directional_features,
    directional_statistics,
)
from repro.core.directions import direction_count, unique_directions


class TestDirectionalFeatures:
    def test_one_value_per_direction(self):
        rng = np.random.default_rng(0)
        window = rng.integers(0, 8, size=(6, 6))
        out = directional_features(window, 8, features=["contrast"])
        assert out["contrast"].shape == (direction_count(2),)

    def test_matches_single_direction_calls(self):
        rng = np.random.default_rng(1)
        window = rng.integers(0, 6, size=(5, 5))
        from repro.core.cooccurrence import cooccurrence_matrix
        from repro.core.features import haralick_features

        out = directional_features(window, 6, features=["entropy"])
        for k, v in enumerate(unique_directions(2)):
            m = cooccurrence_matrix(window, 6, directions=[v])
            want = haralick_features(m, ["entropy"])["entropy"]
            assert out["entropy"][k] == pytest.approx(float(want))

    def test_4d_window(self):
        rng = np.random.default_rng(2)
        window = rng.integers(0, 4, size=(4, 4, 4, 3))
        out = directional_features(window, 4, features=["asm"])
        assert out["asm"].shape == (40,)


class TestDirectionalStatistics:
    def test_mean_and_range(self):
        rng = np.random.default_rng(3)
        window = rng.integers(0, 6, size=(6, 6))
        stats = directional_statistics(window, 6, features=["contrast", "asm"])
        per = directional_features(window, 6, features=["contrast", "asm"])
        for name in ("contrast", "asm"):
            mean, rng_ = stats[name]
            assert mean == pytest.approx(per[name].mean())
            assert rng_ == pytest.approx(per[name].max() - per[name].min())

    def test_isotropic_texture_small_range(self):
        # A checkerboard alternates identically along x and y.
        window = np.indices((8, 8)).sum(axis=0) % 2
        stats = directional_statistics(window, 2, features=["contrast"])
        mean, rng_ = stats["contrast"]
        assert mean > 0

    def test_constant_window(self):
        stats = directional_statistics(np.zeros((5, 5), int), 4, features=["asm"])
        mean, rng_ = stats["asm"]
        assert mean == pytest.approx(1.0)
        assert rng_ == pytest.approx(0.0)


class TestAnisotropy:
    def test_striped_texture_is_anisotropic(self):
        # Horizontal stripes: zero contrast along rows, high across.
        window = np.tile(np.arange(8)[:, None] % 2, (1, 8))
        striped = anisotropy(window, 2, feature="contrast")
        rng = np.random.default_rng(4)
        noise = anisotropy(rng.integers(0, 2, size=(8, 8)), 2, feature="contrast")
        assert striped > 2 * noise

    def test_constant_is_isotropic(self):
        assert anisotropy(np.zeros((6, 6), int), 4, feature="asm") == pytest.approx(0.0)

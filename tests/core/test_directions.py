"""Unit tests for displacement direction enumeration."""

import pytest

from repro.core.directions import (
    all_directions,
    as_offset_array,
    canonical_direction,
    direction_count,
    is_canonical,
    scale_direction,
    unique_directions,
)


class TestAllDirections:
    @pytest.mark.parametrize("ndim,count", [(1, 2), (2, 8), (3, 26), (4, 80)])
    def test_counts(self, ndim, count):
        assert len(all_directions(ndim)) == count

    def test_excludes_zero(self):
        assert (0, 0) not in all_directions(2)

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            all_directions(0)


class TestUniqueDirections:
    @pytest.mark.parametrize("ndim,count", [(1, 1), (2, 4), (3, 13), (4, 40)])
    def test_paper_counts(self, ndim, count):
        """2D has 4 unique directions (paper Fig. 12); 4D has 40."""
        assert len(unique_directions(ndim)) == count
        assert direction_count(ndim) == count

    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_no_opposite_pairs(self, ndim):
        dirs = set(unique_directions(ndim))
        for v in dirs:
            assert tuple(-c for c in v) not in dirs

    @pytest.mark.parametrize("ndim", [2, 3, 4])
    def test_covers_all_with_negation(self, ndim):
        dirs = unique_directions(ndim)
        both = set(dirs) | {tuple(-c for c in v) for v in dirs}
        assert both == set(all_directions(ndim))

    def test_2d_matches_paper_figure_12(self):
        # 0, 45, 90, 135 degrees in (x, y) offsets.
        assert set(unique_directions(2)) == {(1, 0), (1, 1), (0, 1), (1, -1)}


class TestCanonical:
    def test_first_nonzero_positive(self):
        assert canonical_direction((-1, 0, 1, 0)) == (1, 0, -1, 0)
        assert canonical_direction((0, -1)) == (0, 1)
        assert canonical_direction((1, -1)) == (1, -1)

    def test_idempotent(self):
        for v in all_directions(4):
            c = canonical_direction(v)
            assert canonical_direction(c) == c
            assert is_canonical(c)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            canonical_direction((0, 0, 0))


class TestScaleAndStack:
    def test_scale(self):
        assert scale_direction((1, 0, -1, 1), 3) == (3, 0, -3, 3)

    def test_scale_invalid_distance(self):
        with pytest.raises(ValueError):
            scale_direction((1, 0), 0)

    def test_offset_array(self):
        arr = as_offset_array(unique_directions(4))
        assert arr.shape == (40, 4)

"""Unit tests for the fourteen Haralick features."""

import numpy as np
import pytest

from repro.core.features import (
    HARALICK_FEATURES,
    PAPER_FEATURES,
    feature_index,
    haralick_feature_vector,
    haralick_features,
)


def naive_features(counts):
    """Scalar-loop reference implementation of all 14 features."""
    counts = np.asarray(counts, dtype=float)
    g = counts.shape[0]
    total = counts.sum()
    p = counts / total
    px = p.sum(axis=1)
    py = p.sum(axis=0)
    mu_x = sum(i * px[i] for i in range(g))
    mu_y = sum(j * py[j] for j in range(g))
    var_x = sum((i - mu_x) ** 2 * px[i] for i in range(g))
    var_y = sum((j - mu_y) ** 2 * py[j] for j in range(g))
    p_sum = np.zeros(2 * g - 1)
    p_diff = np.zeros(g)
    for i in range(g):
        for j in range(g):
            p_sum[i + j] += p[i, j]
            p_diff[abs(i - j)] += p[i, j]

    def ent(arr):
        return -sum(v * np.log(v) for v in np.ravel(arr) if v > 0)

    out = {}
    out["asm"] = (p**2).sum()
    out["contrast"] = sum(k**2 * p_diff[k] for k in range(g))
    num = sum(i * j * p[i, j] for i in range(g) for j in range(g)) - mu_x * mu_y
    den = np.sqrt(var_x * var_y)
    out["correlation"] = num / den if den > 0 else 0.0
    out["sum_of_squares"] = sum(
        (i - mu_x) ** 2 * p[i, j] for i in range(g) for j in range(g)
    )
    out["idm"] = sum(
        p[i, j] / (1 + (i - j) ** 2) for i in range(g) for j in range(g)
    )
    f6 = sum(k * p_sum[k] for k in range(2 * g - 1))
    out["sum_average"] = f6
    out["sum_variance"] = sum((k - f6) ** 2 * p_sum[k] for k in range(2 * g - 1))
    out["sum_entropy"] = ent(p_sum)
    out["entropy"] = ent(p)
    mean_d = sum(k * p_diff[k] for k in range(g))
    out["difference_variance"] = sum((k - mean_d) ** 2 * p_diff[k] for k in range(g))
    out["difference_entropy"] = ent(p_diff)
    hxy = out["entropy"]
    hxy1 = -sum(
        p[i, j] * np.log(px[i] * py[j])
        for i in range(g)
        for j in range(g)
        if p[i, j] > 0 and px[i] * py[j] > 0
    )
    hxy2 = ent(np.outer(px, py))
    hx, hy = ent(px), ent(py)
    hmax = max(hx, hy)
    out["imc1"] = (hxy - hxy1) / hmax if hmax > 0 else 0.0
    out["imc2"] = np.sqrt(max(0.0, 1.0 - np.exp(-2.0 * (hxy2 - hxy))))
    return out


def random_symmetric_counts(rng, g, scale=10):
    m = rng.integers(0, scale, size=(g, g))
    return m + m.T


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("g", [4, 8, 16])
    def test_all_but_mcc_match_naive(self, seed, g):
        rng = np.random.default_rng(seed)
        counts = random_symmetric_counts(rng, g)
        want = naive_features(counts)
        got = haralick_features(counts)
        for name in HARALICK_FEATURES:
            if name == "mcc":
                continue
            assert got[name] == pytest.approx(want[name], abs=1e-10), name


class TestKnownValues:
    def test_uniform_matrix(self):
        g = 8
        p = np.ones((g, g))
        f = haralick_features(p, ["asm", "entropy", "correlation"])
        assert f["asm"] == pytest.approx(1.0 / g**2)
        assert f["entropy"] == pytest.approx(2 * np.log(g))
        # Independent marginals -> zero correlation.
        assert f["correlation"] == pytest.approx(0.0, abs=1e-12)

    def test_diagonal_matrix(self):
        g = 8
        m = np.eye(g)
        f = haralick_features(m, ["contrast", "idm", "correlation"])
        assert f["contrast"] == pytest.approx(0.0)
        assert f["idm"] == pytest.approx(1.0)
        assert f["correlation"] == pytest.approx(1.0)

    def test_single_cell_degenerate(self):
        m = np.zeros((4, 4))
        m[2, 2] = 5
        f = haralick_features(m)
        assert f["asm"] == pytest.approx(1.0)
        assert f["entropy"] == pytest.approx(0.0)
        assert f["correlation"] == pytest.approx(0.0)  # zero variance
        assert f["mcc"] == pytest.approx(0.0)

    def test_empty_matrix_gives_zeros(self):
        f = haralick_features(np.zeros((8, 8)))
        for name in HARALICK_FEATURES:
            assert f[name] == 0.0

    def test_mcc_perfect_association(self):
        # A permutation-structured p gives MCC = 1.
        g = 4
        m = np.zeros((g, g))
        for i in range(g):
            m[i, (i + 1) % g] = 1.0
        m = m + m.T
        f = haralick_features(m, ["mcc"])
        assert f["mcc"] == pytest.approx(1.0, abs=1e-8)

    def test_mcc_independent(self):
        f = haralick_features(np.ones((6, 6)), ["mcc"])
        assert f["mcc"] == pytest.approx(0.0, abs=1e-8)


class TestBatching:
    def test_batch_matches_individual(self):
        rng = np.random.default_rng(11)
        mats = np.stack([random_symmetric_counts(rng, 8) for _ in range(5)])
        batched = haralick_features(mats)
        for k in range(5):
            single = haralick_features(mats[k])
            for name in HARALICK_FEATURES:
                assert batched[name][k] == pytest.approx(single[name]), name

    def test_leading_shape_preserved(self):
        mats = np.ones((2, 3, 8, 8))
        f = haralick_features(mats, ["asm"])
        assert f["asm"].shape == (2, 3)

    def test_feature_vector_order(self):
        rng = np.random.default_rng(5)
        m = random_symmetric_counts(rng, 8)
        vec = haralick_feature_vector(m, ["contrast", "asm"])
        d = haralick_features(m, ["contrast", "asm"])
        assert vec[0] == d["contrast"] and vec[1] == d["asm"]

    def test_full_vector_shape(self):
        rng = np.random.default_rng(6)
        mats = np.stack([random_symmetric_counts(rng, 4) for _ in range(3)])
        assert haralick_feature_vector(mats).shape == (3, 14)


class TestValidation:
    def test_unknown_feature(self):
        with pytest.raises(KeyError):
            haralick_features(np.ones((4, 4)), ["bogus"])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            haralick_features(np.ones((4, 5)))

    def test_feature_index(self):
        assert feature_index("asm") == 0
        assert feature_index("mcc") == 13
        assert len(HARALICK_FEATURES) == 14
        assert set(PAPER_FEATURES) <= set(HARALICK_FEATURES)

    def test_scaling_invariance(self):
        # Counts vs normalized probabilities give identical features.
        rng = np.random.default_rng(9)
        m = random_symmetric_counts(rng, 8)
        a = haralick_features(m)
        b = haralick_features(m / m.sum())
        for name in HARALICK_FEATURES:
            assert a[name] == pytest.approx(b[name]), name

"""Unit tests: sparse / zero-skip feature paths match the dense kernel."""

import numpy as np
import pytest

from repro.core.cooccurrence import cooccurrence_matrix
from repro.core.features import HARALICK_FEATURES, PAPER_FEATURES, haralick_features
from repro.core.features_sparse import (
    batch_features_from_sparse,
    features_from_entries,
    features_from_sparse,
    features_nonzero,
)
from repro.core.sparse import SparseCooc, sparse_from_dense


def glcm(seed=0, g=16, shape=(5, 5, 5, 3)):
    rng = np.random.default_rng(seed)
    return cooccurrence_matrix(rng.integers(0, g, size=shape), g)


class TestConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_nonzero_matches_dense_all_features(self, seed):
        m = glcm(seed)
        dense = haralick_features(m)
        nz = features_nonzero(m, HARALICK_FEATURES)
        for name in HARALICK_FEATURES:
            assert nz[name] == pytest.approx(float(dense[name]), abs=1e-10), name

    @pytest.mark.parametrize("seed", range(4))
    def test_sparse_matches_dense_all_features(self, seed):
        m = glcm(seed, g=8)
        dense = haralick_features(m)
        sp = features_from_sparse(sparse_from_dense(m), HARALICK_FEATURES)
        for name in HARALICK_FEATURES:
            assert sp[name] == pytest.approx(float(dense[name]), abs=1e-10), name

    def test_default_feature_set_is_papers(self):
        m = glcm(1)
        assert set(features_from_sparse(sparse_from_dense(m))) == set(PAPER_FEATURES)
        assert set(features_nonzero(m)) == set(PAPER_FEATURES)

    def test_very_sparse_matrix(self):
        m = np.zeros((32, 32), dtype=np.int64)
        m[3, 3] = 4
        m[5, 9] = 2
        m[9, 5] = 2
        dense = haralick_features(m, PAPER_FEATURES)
        sp = features_from_sparse(sparse_from_dense(m))
        for name in PAPER_FEATURES:
            assert sp[name] == pytest.approx(float(dense[name])), name


class TestBatch:
    def _stack(self, n=12, g=8):
        rng = np.random.default_rng(7)
        out = []
        for _ in range(n):
            a = rng.integers(0, 4, size=(g, g))
            out.append(sparse_from_dense(a + a.T))
        return out

    def test_batch_matches_per_matrix_all_features(self):
        mats = self._stack()
        batch = batch_features_from_sparse(mats, HARALICK_FEATURES)
        for k, sp in enumerate(mats):
            one = features_from_sparse(sp, HARALICK_FEATURES)
            for name in HARALICK_FEATURES:
                assert batch[name][k] == pytest.approx(one[name], abs=1e-10), name

    def test_block_split_is_invisible(self):
        # A block budget of one matrix forces the maximum number of
        # densify blocks; results must not depend on the split.
        mats = self._stack(n=9, g=8)
        whole = batch_features_from_sparse(mats, PAPER_FEATURES)
        split = batch_features_from_sparse(
            mats, PAPER_FEATURES, block_bytes=8 * 8 * 8
        )
        for name in PAPER_FEATURES:
            np.testing.assert_allclose(split[name], whole[name], atol=1e-12)

    def test_empty_matrix_gives_zeros(self):
        empty = SparseCooc(
            levels=8,
            rows=np.array([], dtype=np.int64),
            cols=np.array([], dtype=np.int64),
            counts=np.array([], dtype=np.int64),
        )
        mats = [empty, sparse_from_dense(np.eye(8, dtype=np.int64) * 2)]
        out = batch_features_from_sparse(mats, PAPER_FEATURES)
        for name in PAPER_FEATURES:
            assert out[name][0] == 0.0, name
        assert out["asm"][1] != 0.0

    def test_empty_batch(self):
        out = batch_features_from_sparse([], PAPER_FEATURES)
        for name in PAPER_FEATURES:
            assert out[name].shape == (0,)

    def test_mixed_levels_rejected(self):
        mats = [
            sparse_from_dense(np.zeros((8, 8), dtype=np.int64)),
            sparse_from_dense(np.zeros((16, 16), dtype=np.int64)),
        ]
        with pytest.raises(ValueError):
            batch_features_from_sparse(mats)

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            batch_features_from_sparse(self._stack(n=1), ["nope"])


class TestEntries:
    def test_duplicate_entries_accumulate(self):
        a = features_from_entries(
            np.array([1, 1]), np.array([2, 2]), np.array([1.0, 1.0]), 4, ["asm"]
        )
        b = features_from_entries(
            np.array([1]), np.array([2]), np.array([2.0]), 4, ["asm"]
        )
        assert a["asm"] == pytest.approx(b["asm"])

    def test_empty_entries_give_zeros(self):
        out = features_from_entries(
            np.array([], dtype=int), np.array([], dtype=int), np.array([]), 8
        )
        assert all(v == 0.0 for v in out.values())

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            features_from_entries(np.array([1]), np.array([1, 2]), np.array([1.0]), 4)

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            features_from_entries(
                np.array([1]), np.array([1]), np.array([1.0]), 4, ["nope"]
            )

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValueError):
            features_nonzero(np.ones((3, 4)))

"""Tests for the import-guarded GPU backend and its fallback path.

Everything above the ``@pytest.mark.gpu`` section runs on CPU-only
machines: probing, the megabatch fallback (bit-identity + warning), the
``kernel.fallback`` obs event emitted by the texture filters, and the
``repro kernels`` CLI.  The marked tests exercise a real CUDA device and
are auto-skipped when the probe finds none.
"""

import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.core import gpu as gpu_mod
from repro.core.backends import (
    get_kernel,
    megabatch_scan,
    reference_scan,
    resolve_scan_kernel,
)
from repro.core.gpu import (
    GpuProbe,
    GpuUnavailableWarning,
    gpu_fallback_count,
    gpu_scan,
    probe_gpu,
)
from repro.core.roi import ROISpec
from repro.datacutter.buffers import DataBuffer
from repro.datacutter.filter import FilterContext
from repro.filters.hcc import HaralickCoMatrixCalculator
from repro.filters.hmp import HaralickMatrixProducer
from repro.filters.messages import TextureChunk, TextureParams

HAVE_DEVICE = probe_gpu().available


@pytest.fixture()
def small():
    rng = np.random.default_rng(11)
    return rng.integers(0, 8, size=(7, 6, 5), dtype=np.int32), ROISpec((3, 3, 2))


def _collect(scan, data, roi, levels, **kw):
    return [(s, np.array(m)) for s, m in scan(data, roi, levels, **kw)]


class TestProbe:
    def test_probe_fields(self):
        probe = probe_gpu()
        assert isinstance(probe, GpuProbe)
        assert isinstance(probe.available, bool)
        if probe.available:
            assert probe.provider in ("cupy", "numba")
            assert probe.device
        else:
            assert probe.provider is None
            assert probe.device is None
            # The accumulated import/driver errors make the failure
            # diagnosable from `repro kernels`.
            assert probe.detail

    def test_probe_is_cached(self):
        assert probe_gpu() is probe_gpu()

    def test_probe_refresh_reruns(self, monkeypatch):
        sentinel = GpuProbe(False, None, None, "sentinel")
        monkeypatch.setattr(gpu_mod, "_probe_cache", sentinel)
        assert probe_gpu() is sentinel
        assert probe_gpu(refresh=True) is not sentinel
        # The refreshed result replaced the cache.
        assert probe_gpu().detail != "sentinel"

    def test_get_kernel_knows_gpu(self):
        scan = get_kernel("gpu")
        assert callable(scan)


class TestResolveFallback:
    def test_resolve_non_gpu_has_no_fallback(self):
        scan, fallback = resolve_scan_kernel("megabatch")
        assert scan is megabatch_scan
        assert fallback is None

    @pytest.mark.skipif(HAVE_DEVICE, reason="CUDA device present")
    def test_resolve_gpu_reports_fallback(self):
        scan, fallback = resolve_scan_kernel("gpu")
        assert fallback == {
            "requested": "gpu",
            "used": "megabatch",
            "reason": probe_gpu().detail,
        }

    @pytest.mark.skipif(not HAVE_DEVICE, reason="no CUDA device")
    def test_resolve_gpu_native(self):
        _scan, fallback = resolve_scan_kernel("gpu")
        assert fallback is None


@pytest.mark.skipif(HAVE_DEVICE, reason="CUDA device present")
class TestFallbackPath:
    def test_fallback_warns_and_matches_reference(self, small):
        data, roi = small
        before = gpu_fallback_count()
        with pytest.warns(GpuUnavailableWarning, match="falling back"):
            got = _collect(gpu_scan, data, roi, 8)
        assert gpu_fallback_count() == before + 1
        want = _collect(reference_scan, data, roi, 8)
        assert len(got) == len(want)
        for (s0, m0), (s1, m1) in zip(want, got):
            assert s0 == s1
            assert np.array_equal(m0, m1)

    def test_fallback_forwards_scan_options(self, small):
        data, roi = small
        with pytest.warns(GpuUnavailableWarning):
            got = _collect(
                gpu_scan, data, roi, 8, batch=3, symmetric=False
            )
        want = _collect(
            megabatch_scan, data, roi, 8, batch=3, symmetric=False
        )
        assert len(got) == len(want) > 1  # batch honoured
        for (s0, m0), (s1, m1) in zip(want, got):
            assert s0 == s1
            assert np.array_equal(m0, m1)

    def test_fallback_still_validates(self, small):
        _data, roi = small
        bad = np.full((6, 6, 6), 9, dtype=np.int32)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", GpuUnavailableWarning)
            with pytest.raises(ValueError):
                list(gpu_scan(bad, roi, 8))


class EventContext(FilterContext):
    """Captures sends and obs events for filter unit tests."""

    tracing = True

    def __init__(self):
        super().__init__("test", 0, 1)
        self.sent = []
        self.events = []

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        self.sent.append(payload)

    def deposit(self, key, value):
        pass

    def event(self, kind, *, dur=0.0, chunk=None, **attrs):
        self.events.append((kind, chunk, attrs))


@pytest.mark.skipif(HAVE_DEVICE, reason="CUDA device present")
class TestFilterFallbackEvent:
    def _params(self, kernel="gpu"):
        return TextureParams(
            roi_shape=(3, 3, 2),
            levels=8,
            features=("asm", "idm"),
            intensity_range=(0.0, 7.0),
            kernel=kernel,
        )

    def _chunk(self, rng):
        from repro.chunks.chunking import partition

        shape = (7, 6, 5)
        chunk = partition(shape, ROISpec((3, 3, 2)), shape)[0]
        data = rng.integers(0, 4096, size=shape).astype(np.float64)
        return TextureChunk(chunk=chunk, data=data)

    @pytest.mark.filterwarnings("ignore::repro.core.gpu.GpuUnavailableWarning")
    @pytest.mark.parametrize("filter_cls", [
        HaralickMatrixProducer, HaralickCoMatrixCalculator,
    ])
    def test_filters_emit_kernel_fallback(self, filter_cls):
        rng = np.random.default_rng(5)
        tc = self._chunk(rng)
        ctx = EventContext()
        filter_cls(self._params()).process(
            "in", DataBuffer(payload=tc), ctx
        )
        fallbacks = [e for e in ctx.events if e[0] == "kernel.fallback"]
        assert len(fallbacks) == 1
        _kind, chunk, attrs = fallbacks[0]
        assert chunk == tc.chunk.index
        assert attrs["requested"] == "gpu"
        assert attrs["used"] == "megabatch"
        assert attrs["reason"]
        assert ctx.sent  # the chunk was still fully processed

    def test_no_event_for_cpu_kernel(self):
        rng = np.random.default_rng(6)
        tc = self._chunk(rng)
        ctx = EventContext()
        HaralickMatrixProducer(self._params(kernel="megabatch")).process(
            "in", DataBuffer(payload=tc), ctx
        )
        assert not [e for e in ctx.events if e[0] == "kernel.fallback"]


class TestKernelsCli:
    def test_kernels_command(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for k in ("batched", "gpu", "incremental", "megabatch", "reference"):
            assert k in out
        assert "default kernel" in out
        probe = probe_gpu()
        if probe.available:
            assert "available via" in out
        else:
            assert "falls back to megabatch" in out
            # The import/driver evidence is printed for diagnosability.
            assert probe.detail.splitlines()[0] in out

    def test_kernels_refresh_flag(self, capsys):
        assert main(["kernels", "--refresh"]) == 0
        assert "gpu:" in capsys.readouterr().out


@pytest.mark.gpu
@pytest.mark.skipif(not HAVE_DEVICE, reason="no CUDA device")
class TestOnDevice:
    """Real-device bit-identity (runs only where a CUDA device exists)."""

    def test_device_matches_reference(self, small):
        data, roi = small
        got = _collect(gpu_scan, data, roi, 8)
        want = _collect(reference_scan, data, roi, 8)
        assert len(got) == len(want)
        for (s0, m0), (s1, m1) in zip(want, got):
            assert s0 == s1
            assert np.array_equal(m0, m1)

    def test_device_paper_config(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 32, size=(20, 20, 12, 7), dtype=np.int32)
        roi = ROISpec((5, 5, 5, 3))
        got = _collect(gpu_scan, data, roi, 32, batch=2048)
        want = _collect(megabatch_scan, data, roi, 32, batch=2048)
        for (s0, m0), (s1, m1) in zip(want, got):
            assert s0 == s1
            assert np.array_equal(m0, m1)

"""Unit tests for masked analysis and multi-distance transforms."""

import numpy as np
import pytest

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.masking import (
    mask_statistics,
    mask_to_positions,
    masked_feature_samples,
)
from repro.core.multidistance import multi_distance_transform, stack_distance_features
from repro.core.roi import ROISpec

SHAPE = (12, 10, 6, 4)
ROI = ROISpec((3, 3, 3, 2))
HC = HaralickConfig(roi_shape=ROI.shape, levels=8, features=("asm", "contrast"))


class TestMaskToPositions:
    def test_full_mask_selects_all(self):
        positions = mask_to_positions(np.ones(SHAPE[:3], bool), SHAPE, ROI)
        assert positions.all()
        assert positions.shape == HC.output_shape(SHAPE)

    def test_empty_mask_selects_none(self):
        positions = mask_to_positions(np.zeros(SHAPE[:3], bool), SHAPE, ROI)
        assert not positions.any()

    def test_center_semantics(self):
        mask = np.zeros(SHAPE[:3], bool)
        mask[5, 4, 2] = True  # single voxel
        positions = mask_to_positions(mask, SHAPE, ROI)
        # Selected position: origin whose center (o + r//2) hits (5, 4, 2).
        want = np.zeros_like(positions)
        want[5 - 1, 4 - 1, 2 - 1, :] = True
        assert np.array_equal(positions, want)

    def test_time_invariance(self):
        rng = np.random.default_rng(0)
        mask = rng.random(SHAPE[:3]) < 0.3
        positions = mask_to_positions(mask, SHAPE, ROI)
        assert np.all(positions[..., 0] == positions[..., -1])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mask_to_positions(np.ones((3, 3, 3), bool), SHAPE, ROI)
        with pytest.raises(ValueError):
            mask_to_positions(np.ones(SHAPE, bool), SHAPE, ROI)


class TestMaskedSamples:
    @pytest.fixture(scope="class")
    def features(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 8, size=SHAPE)
        return haralick_transform(data, HC, quantized=True)

    def test_sample_counts(self, features):
        rng = np.random.default_rng(2)
        mask = rng.random(SHAPE[:3]) < 0.4
        positions = mask_to_positions(mask, SHAPE, ROI)
        samples = masked_feature_samples(features, positions)
        assert samples["asm"].shape == (int(positions.sum()),)

    def test_statistics(self, features):
        positions = np.ones(HC.output_shape(SHAPE), bool)
        stats = mask_statistics(features, positions)
        assert stats["asm"]["n"] == int(np.prod(HC.output_shape(SHAPE)))
        assert stats["asm"]["min"] <= stats["asm"]["mean"] <= stats["asm"]["max"]

    def test_empty_mask_statistics(self, features):
        positions = np.zeros(HC.output_shape(SHAPE), bool)
        stats = mask_statistics(features, positions)
        assert stats["contrast"]["n"] == 0

    def test_mismatched_shapes_rejected(self, features):
        with pytest.raises(ValueError):
            masked_feature_samples(features, np.ones((2, 2), bool))


class TestMultiDistance:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(3)
        return rng.integers(0, 8, size=SHAPE)

    def test_distance_one_matches_plain_transform(self, data):
        out = multi_distance_transform(data, HC, distances=(1,), quantized=True)
        plain = haralick_transform(data, HC, quantized=True)
        np.testing.assert_allclose(out[1]["asm"], plain["asm"])

    def test_distances_differ(self, data):
        out = multi_distance_transform(data, HC, distances=(1, 2), quantized=True)
        assert not np.allclose(out[1]["contrast"], out[2]["contrast"])
        assert out[1]["asm"].shape == out[2]["asm"].shape

    def test_stacking(self, data):
        out = multi_distance_transform(data, HC, distances=(1, 2), quantized=True)
        stacked = stack_distance_features(out)
        assert set(stacked) == {"asm@1", "contrast@1", "asm@2", "contrast@2"}
        np.testing.assert_allclose(stacked["asm@2"], out[2]["asm"])

    @pytest.mark.parametrize("bad", [(), (0,), (1, 1), (5,)])
    def test_validation(self, data, bad):
        with pytest.raises(ValueError):
            multi_distance_transform(data, HC, distances=bad, quantized=True)

    def test_coarse_texture_signature(self):
        """Period-4 stripes along x (0,0,1,1,...): distance-1 pairs differ
        half the time, distance-2 pairs *always* differ (anti-phase), so
        contrast rises with distance — scale sensitivity in action."""
        vol = np.zeros((16, 6, 4, 3), dtype=np.int64)
        vol[:] = (np.arange(16)[:, None, None, None] // 2) % 2
        cfg = HaralickConfig(roi_shape=(5, 3, 3, 2), levels=2, features=("contrast",))
        out = multi_distance_transform(vol, cfg, distances=(1, 2), quantized=True)
        assert out[2]["contrast"].mean() > out[1]["contrast"].mean()

"""Unit tests for grey-level requantization."""

import numpy as np
import pytest

from repro.core.quantization import quantize_equalized, quantize_linear


class TestQuantizeLinear:
    def test_range_maps_onto_all_levels(self):
        data = np.arange(0, 65536, dtype=np.uint16)
        q = quantize_linear(data, 32)
        assert q.min() == 0
        assert q.max() == 31
        assert set(np.unique(q)) == set(range(32))

    def test_uniform_bin_widths(self):
        data = np.arange(320)
        q = quantize_linear(data, 32)
        counts = np.bincount(q, minlength=32)
        assert np.all(counts == 10)

    def test_constant_image_maps_to_zero(self):
        q = quantize_linear(np.full((4, 4), 7.0), 16)
        assert np.all(q == 0)

    def test_explicit_range_clips(self):
        data = np.array([-10.0, 0.0, 50.0, 100.0, 200.0])
        q = quantize_linear(data, 10, lo=0.0, hi=100.0)
        assert q[0] == 0  # clipped below
        assert q[-1] == 9  # clipped above
        assert q[2] == 5

    def test_output_dtype_and_shape(self):
        data = np.random.default_rng(0).random((3, 4, 5, 6))
        q = quantize_linear(data, 8)
        assert q.dtype == np.int32
        assert q.shape == data.shape

    def test_empty_input(self):
        q = quantize_linear(np.zeros((0, 4)), 8)
        assert q.shape == (0, 4)

    def test_max_value_in_last_bin(self):
        # The maximum must land in level G-1, not G (boundary handling).
        q = quantize_linear(np.array([0.0, 1.0]), 4)
        assert list(q) == [0, 3]

    @pytest.mark.parametrize("bad", [0, 1, -3, 2.5, 100000])
    def test_invalid_levels_rejected(self, bad):
        with pytest.raises(ValueError):
            quantize_linear(np.zeros(4), bad)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            quantize_linear(np.zeros(4), 8, lo=10, hi=0)


class TestQuantizeEqualized:
    def test_balanced_mass_per_level(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(size=100_000)  # strongly skewed
        q = quantize_equalized(data, 8)
        counts = np.bincount(q, minlength=8)
        # Each level should carry roughly 1/8 of the samples.
        assert counts.min() > 0.8 * data.size / 8
        assert counts.max() < 1.2 * data.size / 8

    def test_levels_in_range(self):
        data = np.random.default_rng(2).normal(size=1000)
        q = quantize_equalized(data, 16)
        assert q.min() >= 0
        assert q.max() <= 15

    def test_monotone_in_intensity(self):
        data = np.linspace(0, 1, 64)
        q = quantize_equalized(data, 4)
        assert np.all(np.diff(q) >= 0)

    def test_empty_input(self):
        assert quantize_equalized(np.zeros(0), 4).shape == (0,)

"""Unit tests for raster scanning (sequential algorithm, paper Fig. 2)."""

import numpy as np
import pytest

from repro.core.features import PAPER_FEATURES
from repro.core.raster import raster_scan, raster_scan_batches, raster_scan_reference
from repro.core.roi import ROISpec


class TestFastMatchesReference:
    @pytest.mark.parametrize(
        "shape,roi_shape,levels",
        [
            ((8, 8), (3, 3), 4),
            ((6, 6, 4), (3, 3, 2), 5),
            ((6, 6, 6, 4), (5, 5, 5, 3), 8),
        ],
    )
    def test_equal_outputs(self, shape, roi_shape, levels):
        rng = np.random.default_rng(0)
        data = rng.integers(0, levels, size=shape)
        roi = ROISpec(roi_shape)
        ref = raster_scan_reference(data, roi, levels)
        fast = raster_scan(data, roi, levels, batch=3)
        assert set(ref) == set(fast) == set(PAPER_FEATURES)
        for name in ref:
            np.testing.assert_allclose(fast[name], ref[name], atol=1e-12)

    def test_all_fourteen_features(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 4, size=(5, 5))
        roi = ROISpec((3, 3))
        from repro.core.features import HARALICK_FEATURES

        ref = raster_scan_reference(data, roi, 4, features=HARALICK_FEATURES)
        fast = raster_scan(data, roi, 4, features=HARALICK_FEATURES)
        for name in HARALICK_FEATURES:
            np.testing.assert_allclose(fast[name], ref[name], atol=1e-10)


class TestOutputGeometry:
    def test_output_shape(self):
        data = np.zeros((10, 9, 8, 5), dtype=int)
        out = raster_scan(data, ROISpec((5, 5, 5, 3)), 4, features=["asm"])
        assert out["asm"].shape == (6, 5, 4, 3)

    def test_constant_volume(self):
        data = np.zeros((6, 6, 6, 4), dtype=int)
        out = raster_scan(data, ROISpec((5, 5, 5, 3)), 8)
        # Constant image: ASM = 1, IDM = 1 everywhere.
        assert np.allclose(out["asm"], 1.0)
        assert np.allclose(out["idm"], 1.0)

    def test_batches_cover_all_positions(self):
        data = np.random.default_rng(2).integers(0, 4, size=(7, 6))
        total = 0
        for start, vals in raster_scan_batches(
            data, ROISpec((2, 2)), 4, features=["asm"], batch=4
        ):
            total += vals["asm"].shape[0]
        assert total == 6 * 5

    def test_translation_locality(self):
        """A feature value depends only on its ROI window contents."""
        rng = np.random.default_rng(3)
        data = rng.integers(0, 4, size=(8, 8))
        roi = ROISpec((3, 3))
        out = raster_scan(data, roi, 4, features=["entropy"])
        from repro.core.cooccurrence import cooccurrence_matrix
        from repro.core.features import haralick_features

        window = data[2:5, 4:7]
        single = haralick_features(cooccurrence_matrix(window, 4), ["entropy"])
        assert out["entropy"][2, 4] == pytest.approx(single["entropy"])

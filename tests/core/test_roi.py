"""Unit tests for ROI geometry."""

import numpy as np
import pytest

from repro.core.roi import ROISpec, iter_roi_origins, valid_positions_shape


class TestROISpec:
    def test_paper_default(self):
        roi = ROISpec((5, 5, 5, 3))
        assert roi.ndim == 4
        assert roi.size == 375

    def test_fits_in(self):
        roi = ROISpec((5, 5, 5, 3))
        assert roi.fits_in((256, 256, 32, 32))
        assert not roi.fits_in((4, 256, 32, 32))

    def test_fits_in_ndim_mismatch(self):
        with pytest.raises(ValueError):
            ROISpec((5, 5)).fits_in((5, 5, 5))

    @pytest.mark.parametrize("bad", [(), (0, 3), (-1,), (3, 0, 2)])
    def test_invalid_shapes(self, bad):
        with pytest.raises(ValueError):
            ROISpec(bad)


class TestValidPositions:
    def test_paper_workload_grid(self):
        grid = valid_positions_shape((256, 256, 32, 32), ROISpec((5, 5, 5, 3)))
        assert grid == (252, 252, 28, 30)

    def test_exact_fit(self):
        assert valid_positions_shape((5, 5), ROISpec((5, 5))) == (1, 1)

    def test_too_small(self):
        with pytest.raises(ValueError):
            valid_positions_shape((4, 5), ROISpec((5, 5)))


class TestIterOrigins:
    def test_raster_order(self):
        origins = list(iter_roi_origins((3, 4), ROISpec((2, 2))))
        assert origins[0] == (0, 0)
        assert origins[1] == (0, 1)  # last dim fastest (C order)
        assert origins[-1] == (1, 2)
        assert len(origins) == 2 * 3

    def test_matches_ndindex(self):
        shape, roi = (4, 5, 3), ROISpec((2, 2, 2))
        grid = valid_positions_shape(shape, roi)
        assert list(iter_roi_origins(shape, roi)) == list(np.ndindex(grid))

    def test_4d_count(self):
        shape, roi = (6, 6, 5, 4), ROISpec((5, 5, 5, 3))
        assert len(list(iter_roi_origins(shape, roi))) == 2 * 2 * 1 * 2

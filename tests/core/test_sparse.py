"""Unit tests for the sparse co-occurrence representation."""

import numpy as np
import pytest

from repro.core.cooccurrence import cooccurrence_matrix
from repro.core.sparse import SparseCooc, batch_sparse_from_dense, sparse_from_dense


def sym(rng, g, density=0.3, scale=6):
    m = (rng.random((g, g)) < density) * rng.integers(1, scale, size=(g, g))
    return m + m.T


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_dense_sparse_dense(self, seed):
        rng = np.random.default_rng(seed)
        m = sym(rng, 16)
        sp = sparse_from_dense(m)
        assert np.array_equal(sp.to_dense(), m)

    def test_real_glcm_roundtrip(self):
        rng = np.random.default_rng(10)
        window = rng.integers(0, 32, size=(5, 5, 5, 3))
        m = cooccurrence_matrix(window, 32)
        sp = sparse_from_dense(m)
        assert np.array_equal(sp.to_dense(), m)
        assert sp.total == m.sum()

    def test_zero_matrix(self):
        sp = sparse_from_dense(np.zeros((8, 8), dtype=np.int64))
        assert sp.nnz == 0
        assert sp.total == 0
        assert np.array_equal(sp.to_dense(), np.zeros((8, 8), dtype=np.int64))


class TestProperties:
    def test_upper_triangle_only(self):
        rng = np.random.default_rng(3)
        sp = sparse_from_dense(sym(rng, 8))
        assert np.all(sp.rows <= sp.cols)

    def test_counts_positive(self):
        rng = np.random.default_rng(4)
        sp = sparse_from_dense(sym(rng, 8))
        assert np.all(sp.counts > 0)

    def test_density_and_wire_bytes(self):
        m = np.zeros((32, 32), dtype=np.int64)
        m[0, 0] = 2
        m[1, 2] = 3
        m[2, 1] = 3
        sp = sparse_from_dense(m)
        assert sp.nnz == 2
        assert sp.density == pytest.approx(2 / (32 * 33 / 2))
        # 8 B header + 2 entries x (2 B packed position + 2 B count).
        assert sp.wire_bytes() == 8 + 2 * 4

    def test_sparse_mri_like_density(self):
        """Typical requantized MRI ROIs are ~1% dense (paper 4.4.1)."""
        rng = np.random.default_rng(0)
        # Smooth field: values cluster, so few distinct grey-level pairs.
        base = rng.normal(size=(9, 9, 9, 5))
        from scipy.ndimage import gaussian_filter

        smooth = gaussian_filter(base, sigma=2.0)
        from repro.core.quantization import quantize_linear

        q = quantize_linear(smooth, 32)
        window = q[:5, :5, :5, :3]
        sp = sparse_from_dense(cooccurrence_matrix(window, 32))
        # Far below the 528 unique cells (paper reports ~2% on real MRI).
        assert sp.density < 0.2

    def test_asymmetric_rejected(self):
        m = np.zeros((4, 4), dtype=np.int64)
        m[0, 1] = 1
        with pytest.raises(ValueError):
            sparse_from_dense(m)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            sparse_from_dense(np.zeros((3, 4)))


class TestValidation:
    def test_lower_triangle_entries_rejected(self):
        with pytest.raises(ValueError):
            SparseCooc(4, rows=np.array([2]), cols=np.array([1]), counts=np.array([1]))

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            SparseCooc(4, rows=np.array([1]), cols=np.array([1]), counts=np.array([0]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparseCooc(4, rows=np.array([1]), cols=np.array([7]), counts=np.array([1]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseCooc(
                4, rows=np.array([1, 2]), cols=np.array([1]), counts=np.array([1])
            )


class TestBatch:
    def test_batch_conversion(self):
        rng = np.random.default_rng(8)
        mats = np.stack([sym(rng, 8) for _ in range(4)])
        sps = batch_sparse_from_dense(mats)
        assert len(sps) == 4
        for sp, m in zip(sps, mats):
            assert np.array_equal(sp.to_dense(), m)

    def test_batch_requires_3d(self):
        with pytest.raises(ValueError):
            batch_sparse_from_dense(np.zeros((4, 4)))

"""Unit tests for the minimal DICOM reader/writer."""

import struct

import numpy as np
import pytest

from repro.data.dicomlite import (
    DicomError,
    parse_elements,
    read_dicom_slice,
    write_dicom_slice,
)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16])
    def test_pixels_preserved(self, tmp_path, dtype):
        rng = np.random.default_rng(0)
        img = rng.integers(0, np.iinfo(dtype).max, size=(7, 9)).astype(dtype)
        path = str(tmp_path / "s.dcm")
        write_dicom_slice(path, img, t=3, z=11)
        back, meta = read_dicom_slice(path)
        assert np.array_equal(back, img)
        assert back.dtype == dtype
        assert meta == {"t": 3, "z": 11}

    def test_odd_sized_image(self, tmp_path):
        """Odd pixel-byte counts require even-length padding."""
        img = np.arange(15, dtype=np.uint8).reshape(3, 5)
        path = str(tmp_path / "odd.dcm")
        write_dicom_slice(path, img)
        back, _ = read_dicom_slice(path)
        assert np.array_equal(back, img)

    def test_part10_structure(self, tmp_path):
        path = str(tmp_path / "s.dcm")
        write_dicom_slice(path, np.zeros((2, 2), dtype=np.uint16))
        with open(path, "rb") as fh:
            raw = fh.read()
        assert raw[:128] == b"\x00" * 128
        assert raw[128:132] == b"DICM"

    def test_required_tags_present(self, tmp_path):
        path = str(tmp_path / "s.dcm")
        write_dicom_slice(path, np.zeros((4, 6), dtype=np.uint16))
        with open(path, "rb") as fh:
            elements = parse_elements(fh.read())
        assert elements[(0x0028, 0x0010)] == (b"US", struct.pack("<H", 4))  # Rows
        assert elements[(0x0028, 0x0011)] == (b"US", struct.pack("<H", 6))  # Cols
        assert elements[(0x0008, 0x0060)][1].rstrip() == b"MR"
        assert elements[(0x0028, 0x0004)][1].rstrip() == b"MONOCHROME2"
        vr, pixels = elements[(0x7FE0, 0x0010)]
        assert vr == b"OW" and len(pixels) == 4 * 6 * 2


class TestValidation:
    def test_not_dicom_rejected(self, tmp_path):
        path = tmp_path / "x.dcm"
        path.write_bytes(b"nonsense")
        with pytest.raises(DicomError):
            read_dicom_slice(str(path))

    def test_wrong_dtype_rejected(self, tmp_path):
        with pytest.raises(DicomError):
            write_dicom_slice(str(tmp_path / "x.dcm"), np.zeros((2, 2), dtype=np.int16))

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(DicomError):
            write_dicom_slice(str(tmp_path / "x.dcm"), np.zeros((2, 2, 2), dtype=np.uint8))

    def test_truncated_pixeldata_rejected(self, tmp_path):
        path = str(tmp_path / "s.dcm")
        write_dicom_slice(path, np.zeros((4, 4), dtype=np.uint16))
        with open(path, "rb") as fh:
            raw = fh.read()
        with open(path, "wb") as fh:
            fh.write(raw[:-10])
        with pytest.raises(DicomError):
            read_dicom_slice(path)

    def test_corrupt_vr_rejected(self, tmp_path):
        blob = b"\x00" * 128 + b"DICM" + b"\x08\x00\x60\x00\x00\x00\x02\x00MR"
        path = tmp_path / "bad.dcm"
        path.write_bytes(blob)
        with pytest.raises(DicomError):
            parse_elements(path.read_bytes())


class TestDatasetIntegration:
    def test_dicom_dataset_round_trip(self, tmp_path):
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.storage.dataset import DiskDataset4D, write_dataset

        vol = generate_phantom(PhantomConfig(shape=(10, 8, 4, 3), seed=0))
        root = str(tmp_path / "dcm_ds")
        ds = write_dataset(vol, root, num_nodes=2, file_format="dicom")
        assert ds.file_format == "dicom"
        reopened = DiskDataset4D.open(root)
        assert reopened.read_all() == vol
        region = reopened.read_slice_region(1, 2, 2, 8, 1, 7)
        assert np.array_equal(region, vol.get_slice(1, 2)[2:8, 1:7])

    def test_dicom_pipeline_end_to_end(self, tmp_path):
        """The RFR filter reads DICOM datasets transparently (paper 4.3)."""
        import numpy as np

        from repro.core.analysis import HaralickConfig, haralick_transform
        from repro.core.quantization import quantize_linear
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.filters.messages import TextureParams
        from repro.pipeline.config import AnalysisConfig
        from repro.pipeline.run import run_pipeline
        from repro.storage.dataset import write_dataset

        vol = generate_phantom(PhantomConfig(shape=(12, 10, 6, 4), seed=1))
        root = str(tmp_path / "ds")
        write_dataset(vol, root, num_nodes=2, file_format="dicom")
        params = TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm",),
            intensity_range=(0.0, 65535.0),
        )
        cfg = AnalysisConfig(
            texture=params, variant="hmp", texture_chunk_shape=(8, 8, 6, 4)
        )
        result = run_pipeline(root, cfg)
        q = quantize_linear(vol.data, 8, lo=0.0, hi=65535.0)
        want = haralick_transform(
            q, HaralickConfig(roi_shape=(3, 3, 3, 2), levels=8, features=("asm",)),
            quantized=True,
        )
        np.testing.assert_allclose(result.volumes["asm"], want["asm"])

    def test_invalid_format_rejected(self, tmp_path):
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.storage.dataset import write_dataset

        vol = generate_phantom(PhantomConfig(shape=(8, 8, 4, 3), seed=0))
        with pytest.raises(ValueError):
            write_dataset(vol, str(tmp_path / "x"), num_nodes=1, file_format="hdf5")

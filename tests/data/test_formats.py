"""Unit tests for raw slice and PGM formats."""

import numpy as np
import pytest

from repro.data.formats import read_pgm, read_raw_slice, write_pgm, write_raw_slice


class TestRawSlice:
    @pytest.mark.parametrize("bpp,dtype", [(1, np.uint8), (2, np.uint16), (4, np.uint32)])
    def test_round_trip(self, tmp_path, bpp, dtype):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 2 ** (8 * bpp) - 1, size=(6, 9)).astype(dtype)
        path = str(tmp_path / "s.raw")
        nbytes = write_raw_slice(path, img, bpp)
        assert nbytes == 6 * 9 * bpp
        back = read_raw_slice(path, (6, 9), bpp)
        assert np.array_equal(back, img)
        assert back.dtype == dtype

    def test_wrong_shape_on_read(self, tmp_path):
        path = str(tmp_path / "s.raw")
        write_raw_slice(path, np.zeros((4, 4), dtype=np.uint16))
        with pytest.raises(ValueError):
            read_raw_slice(path, (4, 5))

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_raw_slice(str(tmp_path / "x.raw"), np.zeros((2, 2, 2)))

    def test_bad_bpp(self, tmp_path):
        with pytest.raises(ValueError):
            write_raw_slice(str(tmp_path / "x.raw"), np.zeros((2, 2)), 3)


class TestPGM:
    def test_float_round_trip(self, tmp_path):
        img = np.linspace(0, 1, 24).reshape(4, 6)
        path = str(tmp_path / "f.pgm")
        write_pgm(path, img)
        back = read_pgm(path)
        assert back.shape == (4, 6)
        assert np.array_equal(back, np.round(img * 255).astype(np.uint8))

    def test_integer_input(self, tmp_path):
        img = np.arange(12, dtype=np.uint8).reshape(3, 4) * 20
        path = str(tmp_path / "i.pgm")
        write_pgm(path, img)
        assert np.array_equal(read_pgm(path), img)

    def test_unnormalized_float_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(str(tmp_path / "x.pgm"), np.array([[0.0, 2.0]]))

    def test_out_of_range_int_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(str(tmp_path / "x.pgm"), np.array([[0, 300]]))

    def test_header_is_valid_p5(self, tmp_path):
        path = str(tmp_path / "h.pgm")
        write_pgm(path, np.zeros((2, 3)))
        with open(path, "rb") as fh:
            raw = fh.read()
        assert raw.startswith(b"P5\n3 2\n255\n")
        assert len(raw) == len(b"P5\n3 2\n255\n") + 6

    def test_not_pgm_rejected(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6 nonsense")
        with pytest.raises(ValueError):
            read_pgm(str(path))

"""Unit tests for the synthetic DCE-MRI phantom."""

import numpy as np
import pytest

from repro.data.synthetic import (
    Lesion,
    PhantomConfig,
    generate_phantom,
    paper_dataset_config,
)


class TestLesion:
    def test_uptake_then_washout(self):
        lesion = Lesion(center=(0, 0, 0), radius=3, uptake_rate=0.8, washout_rate=0.1)
        t = np.arange(40, dtype=float)
        curve = lesion.enhancement(t)
        assert curve[0] == pytest.approx(0.0)
        peak = int(np.argmax(curve))
        assert 0 < peak < 39  # enhancement rises then falls
        assert curve[-1] < curve[peak]

    def test_amplitude_bounds(self):
        lesion = Lesion(center=(0, 0, 0), radius=3, amplitude=0.5)
        curve = lesion.enhancement(np.arange(100, dtype=float))
        assert np.all(curve >= 0)
        assert np.all(curve <= 0.5)


class TestGeneratePhantom:
    def test_default_geometry_and_dtype(self):
        vol = generate_phantom()
        assert vol.shape == (64, 64, 16, 8)
        assert vol.data.dtype == np.uint16
        assert vol.data.max() <= 4095

    def test_deterministic(self):
        cfg = PhantomConfig(shape=(16, 16, 4, 4), seed=7)
        assert generate_phantom(cfg) == generate_phantom(cfg)

    def test_seed_changes_data(self):
        a = generate_phantom(PhantomConfig(shape=(16, 16, 4, 4), seed=1))
        b = generate_phantom(PhantomConfig(shape=(16, 16, 4, 4), seed=2))
        assert a != b

    def test_lesion_enhances_over_time(self):
        lesion = Lesion(center=(8, 8, 2), radius=4, amplitude=0.8, uptake_rate=1.0)
        cfg = PhantomConfig(
            shape=(16, 16, 4, 8), lesions=(lesion,), noise_sigma=0.0, seed=0
        )
        vol = generate_phantom(cfg).data.astype(float)
        inside_t0 = vol[8, 8, 2, 0]
        inside_t4 = vol[8, 8, 2, 4]
        assert inside_t4 > inside_t0 * 1.2  # strong uptake at the center
        # Far corner barely changes beyond global tissue enhancement.
        corner_delta = vol[0, 0, 0, 4] - vol[0, 0, 0, 0]
        lesion_delta = inside_t4 - inside_t0
        assert lesion_delta > 3 * corner_delta

    def test_noise_free_is_smooth(self):
        cfg = PhantomConfig(shape=(32, 32, 4, 2), noise_sigma=0.0, seed=3)
        vol = generate_phantom(cfg).data.astype(float)
        grad = np.abs(np.diff(vol[:, :, 0, 0], axis=0))
        # Smooth background: mean step well below 3% of the 0..4095 range
        # (white noise would give ~38% for a uniform field).
        assert grad.mean() < 120

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PhantomConfig(shape=(4, 4, 4))
        with pytest.raises(ValueError):
            PhantomConfig(noise_sigma=-1)


class TestPaperDatasetConfig:
    def test_full_scale_matches_paper(self):
        cfg = paper_dataset_config(scale=1.0)
        assert cfg.shape == (256, 256, 32, 32)

    def test_scaled_down(self):
        cfg = paper_dataset_config(scale=0.25)
        assert cfg.shape == (64, 64, 8, 8)
        assert len(cfg.lesions) == 3

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_dataset_config(scale=0)

    def test_lesions_inside_volume(self):
        cfg = paper_dataset_config(scale=0.25, seed=5)
        nx, ny, nz, _ = cfg.shape
        for lesion in cfg.lesions:
            cx, cy, cz = lesion.center
            assert 0 <= cx < nx and 0 <= cy < ny and 0 <= cz < nz

"""Unit tests for the Volume4D container."""

import numpy as np
import pytest

from repro.data.volume import Volume4D


class TestVolume4D:
    def test_shape_properties(self):
        v = Volume4D.empty((8, 6, 4, 3))
        assert v.shape == (8, 6, 4, 3)
        assert v.slice_shape == (8, 6)
        assert v.num_slices == 4
        assert v.num_timesteps == 3
        assert v.nbytes == 8 * 6 * 4 * 3 * 2  # uint16 default

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            Volume4D(np.zeros((4, 4, 4)))

    def test_slice_round_trip(self):
        v = Volume4D.empty((4, 5, 3, 2))
        img = np.arange(20, dtype=np.uint16).reshape(4, 5)
        v.set_slice(1, 2, img)
        assert np.array_equal(v.get_slice(1, 2), img)
        assert v.get_slice(0, 0).sum() == 0

    def test_slice_bounds(self):
        v = Volume4D.empty((4, 4, 2, 2))
        with pytest.raises(IndexError):
            v.get_slice(2, 0)
        with pytest.raises(IndexError):
            v.get_slice(0, 2)

    def test_set_slice_shape_check(self):
        v = Volume4D.empty((4, 4, 2, 2))
        with pytest.raises(ValueError):
            v.set_slice(0, 0, np.zeros((3, 4)))

    def test_iter_slices_order_and_count(self):
        v = Volume4D.empty((2, 2, 3, 2))
        keys = [(t, z) for t, z, _ in v.iter_slices()]
        assert keys == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_equality(self):
        a = Volume4D(np.ones((2, 2, 2, 2), dtype=np.uint16))
        b = Volume4D(np.ones((2, 2, 2, 2), dtype=np.uint16))
        c = Volume4D(np.zeros((2, 2, 2, 2), dtype=np.uint16))
        assert a == b
        assert a != c

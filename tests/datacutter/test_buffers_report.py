"""Unit tests for data buffers and the timing report helpers."""

import pytest

from repro.datacutter.buffers import DataBuffer, EndOfStream
from repro.datacutter.runtime_local import RunResult
from repro.pipeline.report import filter_breakdown, format_breakdown


class TestDataBuffer:
    def test_unique_ids(self):
        a, b = DataBuffer(payload=1), DataBuffer(payload=2)
        assert a.buffer_id != b.buffer_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataBuffer(payload=None, size_bytes=-1)

    def test_repr_compact(self):
        buf = DataBuffer(payload=list(range(10000)), size_bytes=4, metadata={"k": 1})
        text = repr(buf)
        assert "size=4B" in text and len(text) < 200

    def test_metadata_defaults_to_fresh_dict(self):
        a, b = DataBuffer(payload=1), DataBuffer(payload=2)
        a.metadata["x"] = 1
        assert b.metadata == {}

    def test_eos_identity(self):
        m = EndOfStream(producer="P", copy_index=3)
        assert m.producer == "P" and m.copy_index == 3
        assert m == EndOfStream(producer="P", copy_index=3)


def fake_result():
    return RunResult(
        results={"out": [1, 2]},
        elapsed=2.5,
        busy_time={
            ("RFR", 0): 0.1,
            ("RFR", 1): 0.3,
            ("HMP", 0): 1.0,
            ("HMP", 1): 2.0,
        },
        buffers_sent={"RFR:out": 10},
    )


class TestReport:
    def test_breakdown_statistics(self):
        stats = filter_breakdown(fake_result())
        assert stats["RFR"]["copies"] == 2
        assert stats["RFR"]["total"] == pytest.approx(0.4)
        assert stats["HMP"]["mean"] == pytest.approx(1.5)
        assert stats["HMP"]["max"] == pytest.approx(2.0)

    def test_format_respects_order(self):
        text = format_breakdown(fake_result(), order=("HMP", "RFR"))
        lines = text.splitlines()
        assert lines[1].startswith("HMP")
        assert lines[2].startswith("RFR")
        assert "elapsed" in lines[-1]

    def test_filter_busy_time_helper(self):
        r = fake_result()
        assert r.filter_busy_time("HMP") == pytest.approx(3.0)
        assert r.filter_busy_time("missing") == 0.0
        assert r.deposits("out") == [1, 2]
        assert r.deposits("nope") == []

"""Wire codec tests: round-trip properties and the zero-copy guarantee.

The property tests sweep dtypes (both endiannesses), shapes (including
0-d and empty arrays), and memory orders through ``dumps``/``loads`` and
the socket framing, asserting bit-exact reconstruction.  The zero-copy
tests pin the behaviours the runtimes rely on: decoded arrays alias the
frame buffer, and any array that cannot travel out-of-band fires the
array-copy hook.
"""

import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.datacutter.buffers import DataBuffer
from repro.datacutter.net import codec

# Every dtype kind the pipeline's payloads use, in both byte orders for
# the multi-byte ones (a big-endian peer must decode exactly).
_DTYPES = [
    "bool", "int8", "uint8",
    "<i2", ">i2", "<u4", ">u4", "<i8", ">i8",
    "<f4", ">f4", "<f8", ">f8",
    "<c8", ">c8", "<c16", ">c16",
]


def arrays():
    return st.sampled_from(_DTYPES).flatmap(
        lambda dt: hnp.arrays(
            dtype=np.dtype(dt),
            shape=hnp.array_shapes(
                min_dims=0, max_dims=4, min_side=0, max_side=5
            ),
        )
    )


class TestRoundTripProperties:
    @given(arrays())
    @settings(max_examples=80, deadline=None)
    def test_dumps_loads_bit_exact(self, arr):
        out = codec.loads(codec.dumps(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_fortran_order_preserved(self, arr):
        f = np.asfortranarray(arr)
        out = codec.loads(codec.dumps(f))
        np.testing.assert_array_equal(out, f)

    @given(st.lists(arrays(), min_size=0, max_size=4),
           st.integers(-(2 ** 40), 2 ** 40))
    @settings(max_examples=40, deadline=None)
    def test_nested_structures(self, arrs, tag):
        obj = {"tag": tag, "parts": arrs, "pair": (arrs[:1], "label")}
        out = codec.loads(codec.dumps(obj))
        assert out["tag"] == tag
        assert len(out["parts"]) == len(arrs)
        for a, b in zip(out["parts"], arrs):
            np.testing.assert_array_equal(a, b)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_wire_bytes_accounting(self, arr):
        frame = codec.encode(arr)
        assert len(codec.dumps(arr)) == frame.wire_bytes
        assert frame.payload_bytes == (0 if arr.size == 0 else arr.nbytes)


class TestEdgeShapes:
    def test_zero_d_array(self):
        a = np.array(3.5, dtype=">f8")
        out = codec.loads(codec.dumps(a))
        assert out.shape == () and out.dtype == a.dtype
        assert out == a

    def test_empty_array(self):
        a = np.empty((0, 7), dtype="<i4")
        out = codec.loads(codec.dumps(a))
        assert out.shape == (0, 7) and out.dtype == a.dtype

    def test_data_buffer_payload(self):
        buf = DataBuffer(
            payload=np.arange(24, dtype="<f8").reshape(4, 6),
            size_bytes=192,
            metadata={"chunk": (1, 2)},
        )
        out = codec.loads(codec.dumps(buf))
        assert out.metadata == {"chunk": (1, 2)}
        np.testing.assert_array_equal(out.payload, buf.payload)


class TestZeroCopy:
    def test_decoded_array_aliases_frame_buffer(self):
        a = np.arange(100, dtype="<f8")
        blob = bytearray(codec.dumps(a))
        out = codec.loads(blob)
        assert np.shares_memory(out, np.frombuffer(blob, dtype=np.uint8))

    def test_writable_when_buffer_writable(self):
        a = np.arange(10, dtype="<i8")
        out = codec.loads(bytearray(codec.dumps(a)))
        out[0] = 99  # must not raise
        assert out[0] == 99

    def test_contiguous_arrays_never_fire_hook(self):
        payload = {"c": np.arange(12.0).reshape(3, 4),
                   "f": np.asfortranarray(np.arange(12.0).reshape(3, 4))}
        with codec.forbid_array_copies():
            codec.loads(codec.dumps(payload))

    def test_non_contiguous_fires_hook(self):
        with codec.forbid_array_copies():
            with pytest.raises(codec.CodecError, match="non-contiguous"):
                codec.dumps(np.arange(20)[::2])

    def test_object_dtype_fires_hook(self):
        with codec.forbid_array_copies():
            with pytest.raises(codec.CodecError, match="object dtype"):
                codec.dumps(np.array([{"a": 1}], dtype=object))

    def test_ndarray_subclass_fires_hook(self):
        class Sub(np.ndarray):
            pass

        with codec.forbid_array_copies():
            with pytest.raises(codec.CodecError, match="subclass"):
                codec.dumps(np.arange(4).view(Sub))

    def test_hook_uninstalls_on_exit(self):
        with codec.forbid_array_copies():
            pass
        codec.dumps(np.arange(20)[::2])  # copies silently again


class TestSocketFraming:
    def _round_trip(self, obj):
        a, b = socket.socketpair()
        try:
            got = {}

            def _send():
                got["wire"] = codec.send_message(a, obj)

            t = threading.Thread(target=_send)
            t.start()
            out = codec.recv_message(b)
            t.join()
            return out, got["wire"]
        finally:
            a.close()
            b.close()

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_socket_round_trip(self, arr):
        out, wire = self._round_trip(arr)
        np.testing.assert_array_equal(out, arr)
        assert wire == codec.encode(arr).wire_bytes

    def test_multiple_frames_in_sequence(self):
        a, b = socket.socketpair()
        try:
            msgs = [np.arange(i + 1, dtype="<f8") for i in range(5)]

            def _send():
                for m in msgs:
                    codec.send_message(a, m)

            t = threading.Thread(target=_send)
            t.start()
            for m in msgs:
                np.testing.assert_array_equal(codec.recv_message(b), m)
            t.join()
        finally:
            a.close()
            b.close()

    def test_clean_close_detected(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(codec.ConnectionClosed) as exc:
                codec.recv_message(b)
            assert exc.value.clean
        finally:
            b.close()

    def test_mid_frame_close_is_dirty(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"DCW1")  # prefix cut short
            a.close()
            with pytest.raises(codec.ConnectionClosed) as exc:
                codec.recv_message(b)
            assert not exc.value.clean
        finally:
            b.close()


class TestMalformedFrames:
    def test_bad_magic(self):
        blob = bytearray(codec.dumps("x"))
        blob[:4] = b"NOPE"
        with pytest.raises(codec.CodecError, match="magic"):
            codec.loads(blob)

    def test_truncated_prefix(self):
        with pytest.raises(codec.CodecError, match="truncated"):
            codec.loads(b"DC")

    def test_truncated_buffer(self):
        blob = codec.dumps(np.arange(100, dtype="<f8"))
        with pytest.raises(codec.CodecError, match="truncated"):
            codec.loads(blob[:-1])

    def test_oversized_header_rejected(self):
        blob = bytearray(codec.dumps("x"))
        # Rewrite header_len to an absurd value (offset 9: after 4s B I).
        import struct

        struct.pack_into("!I", blob, 9, codec.MAX_HEADER_BYTES + 1)
        with pytest.raises(codec.CodecError, match="too large"):
            codec.loads(blob)

"""Fault-injection and fault-tolerance tests for the threaded runtime.

Covers the faults vocabulary itself (RetryPolicy, FaultPlan, injectors)
plus LocalRuntime recovery behaviour: retry with backoff, copy-death
reroute to survivors, abort propagation without deadlock, and the EOS
protocol under failure.
"""

import time

import pytest

from repro.datacutter.buffers import DataBuffer
from repro.datacutter.faults import (
    NO_RETRY,
    NULL_INJECTOR,
    CopyFailure,
    CrashCopy,
    DropBuffers,
    FailProcess,
    FaultPlan,
    InjectedCrash,
    InjectedDrop,
    InjectedFault,
    PipelineError,
    RetryPolicy,
)
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_local import LocalRuntime


# ---------------------------------------------------------------------------
# Vocabulary unit tests


class TestRetryPolicy:
    def test_defaults(self):
        p = RetryPolicy()
        assert p.max_attempts == 3
        assert p.reroute

    def test_backoff_schedule(self):
        p = RetryPolicy(backoff=0.01, backoff_factor=2.0)
        assert p.delay(1) == pytest.approx(0.01)
        assert p.delay(2) == pytest.approx(0.02)
        assert p.delay(3) == pytest.approx(0.04)

    def test_no_retry_constant(self):
        assert NO_RETRY.max_attempts == 1
        assert not NO_RETRY.reroute

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff": -1.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestPipelineError:
    def test_message_embeds_first_failure(self):
        f = CopyFailure("HCC", 2, "ValueError('boom')", kind="crash")
        err = PipelineError([f])
        assert "HCC[2]" in str(err)
        assert "boom" in str(err)
        assert isinstance(err, RuntimeError)

    def test_failed_filters(self):
        err = PipelineError(
            [CopyFailure("B", 0, "x"), CopyFailure("A", 1, "y")]
        )
        assert err.failed_filters() == ["A", "B"]


class TestFaultPlan:
    def test_injector_matching(self):
        plan = FaultPlan().crash_copy("HCC", copy_index=1)
        assert plan.affects("HCC")
        assert not plan.affects("HPC")
        assert plan.injector_for("HCC", 0) is NULL_INJECTOR
        assert plan.injector_for("HPC", 1) is NULL_INJECTOR
        assert plan.injector_for("HCC", 1).active

    def test_copy_index_none_matches_all(self):
        plan = FaultPlan().fail_process("HMP", probability=1.0)
        assert plan.injector_for("HMP", 0).active
        assert plan.injector_for("HMP", 7).active

    def test_crash_fires_after_n_buffers(self):
        plan = FaultPlan().crash_copy("F", 0, after_buffers=2)
        inj = plan.injector_for("F", 0)
        inj.before_process(None)
        inj.before_process(None)
        with pytest.raises(InjectedCrash):
            inj.before_process(None)

    def test_crash_after_processing(self):
        plan = FaultPlan().crash_copy("F", 0, after_buffers=0, when="after")
        inj = plan.injector_for("F", 0)
        inj.before_process(None)  # does not fire
        with pytest.raises(InjectedCrash):
            inj.after_process(None)

    def test_retry_does_not_recount_buffer(self):
        plan = FaultPlan().crash_copy("F", 0, after_buffers=1)
        inj = plan.injector_for("F", 0)
        inj.before_process(None, attempt=1)
        inj.before_process(None, attempt=2)  # same buffer retried
        assert inj.received == 1

    def test_fail_process_seeded_and_capped(self):
        plan = FaultPlan(seed=3).fail_process("F", 1.0, max_failures=2)
        inj = plan.injector_for("F", 0)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                inj.before_process(None)
        inj.before_process(None)  # cap reached: no more failures

    def test_drop_is_retryable_fault(self):
        plan = FaultPlan().drop_buffers("F", probability=1.0, max_drops=1)
        inj = plan.injector_for("F", 0)
        with pytest.raises(InjectedDrop):
            inj.before_process(None)

    def test_injectors_deterministic(self):
        def outcomes(seed):
            inj = FaultPlan(seed=seed).fail_process("F", 0.5).injector_for("F", 0)
            out = []
            for _ in range(20):
                try:
                    inj.before_process(None)
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert outcomes(11) == outcomes(11)
        assert outcomes(11) != outcomes(12)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CrashCopy("F", 0, when="sometimes")
        with pytest.raises(ValueError):
            FailProcess("F", probability=1.5)
        with pytest.raises(ValueError):
            DropBuffers("F", probability=-0.1)

    def test_plan_rejects_unknown_targets(self):
        # A typo'd plan must not silently inject nothing: a resilience
        # run that tested nothing looks exactly like a clean recovery.
        copies = {"P": 1, "D": 3}
        FaultPlan().crash_copy("D", copy_index=2).validate(copies)
        with pytest.raises(ValueError, match="unknown filter"):
            FaultPlan().crash_copy("NOPE", copy_index=0).validate(copies)
        with pytest.raises(ValueError, match="has 3 copies"):
            FaultPlan().crash_copy("D", copy_index=3).validate(copies)
        # copy_index=None (every copy) is always in range.
        FaultPlan().fail_process("P", probability=0.5).validate(copies)

    def test_runtime_rejects_bad_plan_before_starting(self):
        plan = FaultPlan().crash_copy("NOPE", copy_index=0)
        with pytest.raises(ValueError, match="unknown filter"):
            LocalRuntime(pipeline(), faults=plan).run()


# ---------------------------------------------------------------------------
# Runtime fault tolerance


class Producer(Filter):
    def __init__(self, count=20):
        self.count = count

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []
        self.finalized = 0

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        self.finalized += 1
        ctx.deposit("collected", sorted(self.items))
        ctx.deposit("finalize_calls", self.finalized)


def pipeline(doubler_copies=3, count=20, policy="demand_driven"):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count))
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy=policy)
    g.connect("D", "out", "C")
    return g


class TestLocalRecovery:
    def test_transient_failures_retried(self):
        plan = FaultPlan(seed=0).fail_process("D", 1.0, max_failures=2)
        rt = LocalRuntime(
            pipeline(doubler_copies=1),
            retry=RetryPolicy(max_attempts=5, backoff=0.001),
            faults=plan,
        )
        result = rt.run(timeout=30)
        assert result.deposits("collected") == [[2 * i for i in range(20)]]
        assert result.retries == 2
        assert result.failed_copies == []

    def test_crashed_copy_rerouted_to_survivors(self):
        # Demand-driven ties break toward copy 0, so it deterministically
        # receives the first buffer and the crash always fires.
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        rt = LocalRuntime(pipeline(doubler_copies=3), faults=plan)
        result = rt.run(timeout=30)
        assert result.deposits("collected") == [[2 * i for i in range(20)]]
        assert result.reroutes >= 1
        (failure,) = result.failed_copies
        assert failure.filter_name == "D" and failure.copy_index == 0
        assert failure.recovered and failure.injected
        assert failure.kind == "crash"

    def test_crash_mid_stream_rerouted(self):
        plan = FaultPlan().crash_copy("D", copy_index=1, after_buffers=4)
        result = LocalRuntime(pipeline(doubler_copies=2), faults=plan).run(
            timeout=30
        )
        assert result.deposits("collected") == [[2 * i for i in range(20)]]

    def test_drops_redelivered(self):
        plan = FaultPlan(seed=5).drop_buffers("D", probability=0.3)
        rt = LocalRuntime(
            pipeline(doubler_copies=2),
            retry=RetryPolicy(max_attempts=8, backoff=0.001),
            faults=plan,
        )
        result = rt.run(timeout=30)
        assert result.deposits("collected") == [[2 * i for i in range(20)]]

    def test_delays_only_slow_down(self):
        plan = FaultPlan().delay_buffers("D", delay=0.002)
        result = LocalRuntime(pipeline(doubler_copies=2), faults=plan).run(
            timeout=30
        )
        assert result.deposits("collected") == [[2 * i for i in range(20)]]
        assert result.failed_copies == []

    def test_round_robin_reroute(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        result = LocalRuntime(
            pipeline(doubler_copies=3, policy="round_robin"), faults=plan
        ).run(timeout=30)
        assert result.deposits("collected") == [[2 * i for i in range(20)]]


class TestLocalAbort:
    def test_no_retry_raises_bounded(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        rt = LocalRuntime(pipeline(doubler_copies=3), retry=NO_RETRY, faults=plan)
        t0 = time.monotonic()
        with pytest.raises(PipelineError) as exc:
            rt.run(timeout=30)
        assert time.monotonic() - t0 < 20
        assert any(f.filter_name == "D" for f in exc.value.failures)

    def test_single_copy_crash_fatal(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        with pytest.raises(PipelineError):
            LocalRuntime(pipeline(doubler_copies=1), faults=plan).run(timeout=30)

    def test_deadlock_regression_failed_consumer_bounded_queue(self):
        """Producers blocked on a dead copy's full queue must unblock."""
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        rt = LocalRuntime(
            pipeline(doubler_copies=1, count=200),
            max_queue=2,
            retry=NO_RETRY,
            faults=plan,
        )
        t0 = time.monotonic()
        with pytest.raises(PipelineError):
            rt.run(timeout=30)
        assert time.monotonic() - t0 < 20

    def test_timeout_raises_pipeline_error(self):
        plan = FaultPlan().delay_buffers("D", delay=0.5)
        rt = LocalRuntime(pipeline(doubler_copies=1), faults=plan)
        with pytest.raises(PipelineError, match="did not finish"):
            rt.run(timeout=0.2)

    def test_exhausted_retries_without_reroute_policy(self):
        plan = FaultPlan(seed=0).fail_process("D", 1.0)
        rt = LocalRuntime(
            pipeline(doubler_copies=2),
            retry=RetryPolicy(max_attempts=2, backoff=0.001, reroute=False),
            faults=plan,
        )
        with pytest.raises(PipelineError):
            rt.run(timeout=30)


class TestEOSUnderFailure:
    """Satellite: EOS still propagates when a mid-pipeline copy dies and
    downstream filters finalize exactly once."""

    def test_downstream_finalizes_exactly_once(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        result = LocalRuntime(pipeline(doubler_copies=3), faults=plan).run(
            timeout=30
        )
        assert result.deposits("finalize_calls") == [1]
        assert result.deposits("collected") == [[2 * i for i in range(20)]]

    def test_two_stage_failure_still_closes_streams(self):
        # Kill one copy in EACH replicated stage; everything must still
        # arrive and every surviving copy must see full EOS counts.
        g = FilterGraph()
        g.add_filter("P", lambda: Producer(30))
        g.add_filter("D1", Doubler, copies=2)
        g.add_filter("D2", Doubler, copies=2)
        g.add_filter("C", Collector)
        g.connect("P", "out", "D1")
        g.connect("D1", "out", "D2")
        g.connect("D2", "out", "C")
        plan = (
            FaultPlan()
            .crash_copy("D1", copy_index=0, after_buffers=2)
            .crash_copy("D2", copy_index=1, after_buffers=2)
        )
        result = LocalRuntime(g, faults=plan).run(timeout=30)
        assert result.deposits("collected") == [[4 * i for i in range(30)]]
        assert result.deposits("finalize_calls") == [1]
        assert len(result.failed_copies) == 2
        assert all(f.recovered for f in result.failed_copies)


class TestNoFaultOverhead:
    def test_null_injector_on_clean_run(self):
        result = LocalRuntime(pipeline()).run(timeout=30)
        assert result.retries == 0
        assert result.reroutes == 0
        assert result.failed_copies == []

    def test_existing_error_semantics_preserved(self):
        class Exploder(Filter):
            def process(self, stream, buffer, ctx):
                raise ValueError("boom")

        g = FilterGraph()
        g.add_filter("P", lambda: Producer(3))
        g.add_filter("X", Exploder)
        g.connect("P", "out", "X")
        with pytest.raises(RuntimeError, match="boom"):
            LocalRuntime(g).run(timeout=30)

"""Fault tolerance on the multiprocessing runtime.

The MP runtime adds the failure mode real clusters have: a child process
can die without saying goodbye (hard kill / ``os._exit``).  These tests
cover graceful copy-death recovery (reroute to survivors), silent-death
detection through the parent's exitcode watcher, and bounded abort with
retries disabled — none of which may hang.

Filter classes live at module level so the forked children can run them.
"""

import time

import pytest

from repro.datacutter.faults import NO_RETRY, FaultPlan, PipelineError
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_mp import MPRuntime


class Producer(Filter):
    def __init__(self, count=20):
        self.count = count

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []
        self.finalized = 0

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        self.finalized += 1
        ctx.deposit("collected", sorted(self.items))
        ctx.deposit("finalize_calls", self.finalized)


def pipeline(doubler_copies=3, count=20, policy="demand_driven"):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count))
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy=policy)
    g.connect("D", "out", "C")
    return g


class TestMPRecovery:
    def test_crashed_copy_rerouted_to_survivors(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        result = MPRuntime(pipeline(doubler_copies=3), faults=plan).run(
            timeout=60
        )
        assert result.deposits("collected") == [[2 * i for i in range(20)]]
        assert result.reroutes >= 1
        (failure,) = result.failed_copies
        assert failure.filter_name == "D" and failure.copy_index == 0
        assert failure.recovered and failure.injected
        assert failure.kind == "crash"

    def test_crash_mid_stream_rerouted(self):
        plan = FaultPlan().crash_copy("D", copy_index=1, after_buffers=4)
        result = MPRuntime(pipeline(doubler_copies=2), faults=plan).run(
            timeout=60
        )
        assert result.deposits("collected") == [[2 * i for i in range(20)]]

    def test_downstream_finalizes_exactly_once(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        result = MPRuntime(pipeline(doubler_copies=3), faults=plan).run(
            timeout=60
        )
        assert result.deposits("finalize_calls") == [1]


class TestMPSilentDeath:
    def test_hard_kill_detected_by_exitcode(self):
        # os._exit: no control message, no EOS, no cleanup.  The parent's
        # exitcode watcher must synthesize the failure and abort, bounded.
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0,
                                      hard=True)
        rt = MPRuntime(pipeline(doubler_copies=2), faults=plan)
        t0 = time.monotonic()
        with pytest.raises(PipelineError) as exc:
            rt.run(timeout=60)
        assert time.monotonic() - t0 < 45
        (failure,) = [f for f in exc.value.failures if f.kind == "exitcode"]
        assert failure.filter_name == "D" and failure.copy_index == 0
        assert failure.exitcode == 19

    def test_hang_regression_child_dies_without_message(self):
        """Pre-fix behaviour: run() blocked forever on results_q.get()."""
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0,
                                      hard=True)
        rt = MPRuntime(
            pipeline(doubler_copies=1, count=100), max_queue=2, faults=plan
        )
        t0 = time.monotonic()
        with pytest.raises(PipelineError):
            rt.run(timeout=60)
        assert time.monotonic() - t0 < 45


class TestMPAbort:
    def test_no_retry_raises_bounded(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        rt = MPRuntime(pipeline(doubler_copies=3), retry=NO_RETRY, faults=plan)
        t0 = time.monotonic()
        with pytest.raises(PipelineError) as exc:
            rt.run(timeout=60)
        assert time.monotonic() - t0 < 45
        assert any(f.filter_name == "D" for f in exc.value.failures)

    def test_single_copy_crash_fatal(self):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        with pytest.raises(PipelineError):
            MPRuntime(pipeline(doubler_copies=1), faults=plan).run(timeout=60)


class TestMPNoFaultOverhead:
    def test_clean_run_counters_zero(self):
        result = MPRuntime(pipeline()).run(timeout=60)
        assert result.deposits("collected") == [[2 * i for i in range(20)]]
        assert result.retries == 0
        assert result.reroutes == 0
        assert result.failed_copies == []

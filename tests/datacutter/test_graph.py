"""Unit tests for filter graphs, placement and XML specs."""

import pytest

from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.placement import Placement
from repro.datacutter.xmlspec import graph_from_xml, graph_to_xml


class Dummy(Filter):
    def generate(self, ctx):
        pass

    def process(self, stream, buffer, ctx):
        pass


def linear_graph():
    g = FilterGraph()
    g.add_filter("A", Dummy, copies=2)
    g.add_filter("B", Dummy, copies=3)
    g.add_filter("C", Dummy)
    g.connect("A", "ab", "B", policy="round_robin")
    g.connect("B", "bc", "C")
    return g


class TestFilterGraph:
    def test_sources_and_sinks(self):
        g = linear_graph()
        assert g.sources() == ["A"]
        assert g.sinks() == ["C"]

    def test_edges_queries(self):
        g = linear_graph()
        assert [e.dst for e in g.out_edges("A")] == ["B"]
        assert [e.src for e in g.in_edges("C")] == ["B"]
        assert g.copies("B") == 3

    def test_duplicate_filter_rejected(self):
        g = FilterGraph()
        g.add_filter("A", Dummy)
        with pytest.raises(ValueError):
            g.add_filter("A", Dummy)

    def test_unknown_endpoint_rejected(self):
        g = FilterGraph()
        g.add_filter("A", Dummy)
        with pytest.raises(ValueError):
            g.connect("A", "s", "B")

    def test_duplicate_stream_rejected(self):
        g = FilterGraph()
        g.add_filter("A", Dummy)
        g.add_filter("B", Dummy)
        g.connect("A", "s", "B")
        with pytest.raises(ValueError):
            g.connect("A", "s", "B")

    def test_invalid_policy_rejected(self):
        g = FilterGraph()
        g.add_filter("A", Dummy)
        g.add_filter("B", Dummy)
        with pytest.raises(ValueError):
            g.connect("A", "s", "B", policy="bogus")

    def test_cycle_detected(self):
        g = FilterGraph()
        g.add_filter("A", Dummy)
        g.add_filter("B", Dummy)
        g.connect("A", "ab", "B")
        g.connect("B", "ba", "A")
        with pytest.raises(ValueError):
            g.validate()

    def test_empty_graph_invalid(self):
        with pytest.raises(ValueError):
            FilterGraph().validate()

    def test_invalid_copies(self):
        g = FilterGraph()
        with pytest.raises(ValueError):
            g.add_filter("A", Dummy, copies=0)

    def test_valid_graph_passes(self):
        linear_graph().validate()


class TestPlacement:
    def test_place_and_lookup(self):
        p = Placement()
        p.place("A", 0, "n0")
        p.place_copies("B", ["n0", "n1"])
        assert p.node_of("A", 0) == "n0"
        assert p.node_of("B", 1) == "n1"
        assert p.copies_on("n0") == [("A", 0), ("B", 0)]
        assert p.nodes() == ["n0", "n1"]

    def test_colocated(self):
        p = Placement()
        p.place("A", 0, "n0")
        p.place("B", 0, "n0")
        p.place("B", 1, "n1")
        assert p.colocated(("A", 0), ("B", 0))
        assert not p.colocated(("A", 0), ("B", 1))

    def test_round_robin_placement(self):
        p = Placement()
        p.place_round_robin("A", 5, ["n0", "n1"])
        assert [p.node_of("A", i) for i in range(5)] == ["n0", "n1", "n0", "n1", "n0"]

    def test_duplicate_placement_rejected(self):
        p = Placement()
        p.place("A", 0, "n0")
        with pytest.raises(ValueError):
            p.place("A", 0, "n1")

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            Placement().node_of("A", 0)

    def test_validate_for_graph(self):
        g = linear_graph()
        p = Placement()
        p.place_copies("A", ["n0", "n1"])
        p.place_copies("B", ["n0", "n1", "n2"])
        with pytest.raises(ValueError):
            p.validate_for(g)  # C unplaced
        p.place("C", 0, "n0")
        p.validate_for(g)

    def test_validate_rejects_extra(self):
        g = FilterGraph()
        g.add_filter("A", Dummy)
        p = Placement()
        p.place("A", 0, "n0")
        p.place("Z", 0, "n0")
        with pytest.raises(ValueError):
            p.validate_for(g)


XML_DOC = """
<filtergraph>
  <filter name="RFR" type="reader" copies="4"/>
  <filter name="IIC" type="stitch"/>
  <filter name="HMP" type="texture" copies="8"/>
  <stream name="rfr2iic" src="RFR" dst="IIC" policy="explicit"/>
  <stream name="iic2tex" src="IIC" dst="HMP" policy="demand_driven"/>
</filtergraph>
"""

REGISTRY = {"reader": Dummy, "stitch": Dummy, "texture": Dummy}


class TestXMLSpec:
    def test_parse(self):
        g = graph_from_xml(XML_DOC, REGISTRY)
        assert set(g.filters) == {"RFR", "IIC", "HMP"}
        assert g.copies("RFR") == 4
        assert g.copies("IIC") == 1
        edge = g.in_edges("IIC")[0]
        assert edge.policy == "explicit"

    def test_round_trip(self):
        g = graph_from_xml(XML_DOC, REGISTRY)
        doc2 = graph_to_xml(g)
        g2 = graph_from_xml(doc2, REGISTRY)
        assert set(g2.filters) == set(g.filters)
        assert len(g2.edges) == len(g.edges)
        assert g2.copies("HMP") == 8

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            graph_from_xml(XML_DOC, {"reader": Dummy})

    def test_bad_xml_rejected(self):
        with pytest.raises(ValueError):
            graph_from_xml("<not closed", REGISTRY)

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError):
            graph_from_xml("<other/>", REGISTRY)

    def test_missing_attrs_rejected(self):
        with pytest.raises(ValueError):
            graph_from_xml(
                "<filtergraph><filter name='X'/></filtergraph>", REGISTRY
            )

"""Unit tests for the observability layer (repro.datacutter.obs)."""

import json

import pytest

from repro.datacutter.obs import (
    LIFECYCLE_KINDS,
    NULL_TRACER,
    MetricsRegistry,
    Trace,
    TraceEvent,
    Tracer,
    events_from_sim_spans,
    format_summary,
    lifecycle_counts,
    parse_metric_key,
    resolve_trace_mode,
    snapshot_run,
    to_chrome_json,
    validate_event,
    validate_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.datacutter.obs.export import read_jsonl
from repro.datacutter.obs.metrics import flatten_key


# -- events ----------------------------------------------------------------


def test_event_roundtrip_and_start():
    ev = TraceEvent(
        ts=10.5, kind="service", filter="HMP", copy=1, dur=0.5,
        chunk=(0, 1, 0, 0), attrs={"stream": "iic2tex"},
    )
    assert ev.start == 10.0
    back = TraceEvent.from_dict(json.loads(json.dumps(ev.to_dict())))
    assert back == ev


def test_validate_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown event kind"):
        validate_event(TraceEvent(ts=0, kind="nope", filter="F", copy=0))


def test_validate_requires_identity_except_routing():
    with pytest.raises(ValueError, match="missing filter/copy"):
        validate_event(TraceEvent(ts=0, kind="chunk.read"))
    # routing kinds live at the head, outside any copy
    validate_event(
        TraceEvent(ts=0, kind="sched.pick",
                   attrs={"stream": "s", "policy": "rr", "dest": 0})
    )


def test_validate_requires_kind_attrs():
    with pytest.raises(ValueError, match="missing attrs"):
        validate_event(TraceEvent(ts=0, kind="queue.wait", filter="F", copy=0))


def test_validate_rejects_negative_duration():
    with pytest.raises(ValueError, match="negative duration"):
        validate_event(
            TraceEvent(ts=0, kind="chunk.read", filter="F", copy=0, dur=-1.0)
        )


def test_lifecycle_counts_groups_by_chunk():
    evs = [
        TraceEvent(ts=0, kind="chunk.stitch", filter="IIC", copy=0, chunk=(0, 0)),
        TraceEvent(ts=1, kind="chunk.stitch", filter="IIC", copy=1, chunk=(1, 0)),
        TraceEvent(ts=2, kind="chunk.write", filter="USO", copy=0, chunk=(0, 0)),
        TraceEvent(ts=3, kind="chunk.write", filter="USO", copy=0, chunk=(0, 0)),
        TraceEvent(ts=4, kind="service", filter="X", copy=0,
                   attrs={"stream": "s"}),
    ]
    counts = lifecycle_counts(evs)
    assert counts["chunk.stitch"] == {(0, 0): 1, (1, 0): 1}
    assert counts["chunk.write"] == {(0, 0): 2}
    assert set(counts) == set(LIFECYCLE_KINDS)


# -- tracer ----------------------------------------------------------------


def test_tracer_emit_and_drain():
    tr = Tracer()
    tr.emit("copy.start", filter="F", copy=0)
    tr.emit("chunk.read", filter="F", copy=0, dur=0.1, chunk=[1, 2])
    assert len(tr) == 2
    evs = tr.drain()
    assert len(evs) == 2 and len(tr) == 0
    assert evs[1].chunk == (1, 2)  # list coerced to tuple
    validate_events(evs)


def test_null_tracer_is_inert():
    NULL_TRACER.emit("chunk.read", filter="F", copy=0)
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.drain() == []
    assert len(NULL_TRACER) == 0


def test_resolve_trace_mode():
    assert resolve_trace_mode(None) is None
    assert resolve_trace_mode(False) is None
    assert resolve_trace_mode(True) == "events"
    assert resolve_trace_mode("chrome") == "chrome"
    with pytest.raises(ValueError, match="unknown trace mode"):
        resolve_trace_mode("bogus")


def test_trace_sorts_and_summarizes():
    evs = [
        TraceEvent(ts=2.0, kind="copy.done", filter="F", copy=0),
        TraceEvent(ts=1.0, kind="copy.start", filter="F", copy=0),
    ]
    trace = Trace(evs)
    assert [e.kind for e in trace.events] == ["copy.start", "copy.done"]
    assert trace.t0 == 1.0
    assert "events" in trace.summary()


# -- metrics ---------------------------------------------------------------


def test_flatten_parse_roundtrip():
    key = flatten_key("busy_seconds", {"filter": "HMP", "copy": 3})
    assert key == "busy_seconds{copy=3,filter=HMP}"
    name, labels = parse_metric_key(key)
    assert name == "busy_seconds"
    assert labels == {"copy": "3", "filter": "HMP"}
    assert parse_metric_key("plain") == ("plain", {})


def test_registry_instruments():
    reg = MetricsRegistry()
    reg.counter("n", filter="A").inc()
    reg.counter("n", filter="A").inc(2)
    reg.gauge("depth").set(3)
    reg.gauge("depth").set(1)
    h = reg.histogram("t")
    h.observe(1.0)
    h.observe(3.0)
    snap = reg.snapshot()
    assert snap["counters"]["n{filter=A}"] == 3
    assert snap["gauges"]["depth"] == {"value": 1.0, "max": 3.0}
    assert snap["histograms"]["t"] == {
        "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
    }


def test_snapshot_run_busy_histograms_match_per_copy_values():
    busy = {("HMP", 0): 1.0, ("HMP", 1): 3.0, ("USO", 0): 0.5}
    snap = snapshot_run(busy, {"s": 7}, 2, 1, [("HMP", 1)], {"l": 10}, 4.2)
    h = snap["histograms"]["busy_seconds{filter=HMP}"]
    assert h["count"] == 2 and h["sum"] == 4.0 and h["max"] == 3.0
    assert snap["counters"]["copies{filter=HMP}"] == 2
    assert snap["counters"]["buffers_sent{stream=s}"] == 7
    assert snap["counters"]["retries"] == 2
    assert snap["counters"]["reroutes"] == 1
    assert snap["counters"]["failed_copies{filter=HMP}"] == 1
    assert snap["counters"]["wire_bytes{link=l}"] == 10
    assert snap["gauges"]["elapsed_seconds"]["value"] == 4.2


def test_snapshot_run_ingests_events():
    evs = [
        TraceEvent(ts=1, kind="queue.wait", filter="F", copy=0, dur=0.25,
                   attrs={"stream": "s"}),
        TraceEvent(ts=1, kind="service", filter="F", copy=0, dur=0.5,
                   attrs={"stream": "s"}),
        TraceEvent(ts=1, kind="queue.depth", filter="F", copy=0,
                   attrs={"depth": 4}),
        TraceEvent(ts=1, kind="sched.pick",
                   attrs={"stream": "s", "policy": "demand_driven", "dest": 1}),
        TraceEvent(ts=1, kind="wire.frame", attrs={"stream": "s", "bytes": 9}),
        TraceEvent(ts=1, kind="chunk.write", filter="F", copy=0, dur=0.1,
                   chunk=(0,), attrs={"records": 12}),
    ]
    snap = snapshot_run({}, {}, 0, 0, [], {}, 1.0, events=evs)
    assert snap["histograms"]["queue_wait_seconds{filter=F}"]["sum"] == 0.25
    assert snap["histograms"]["service_seconds{filter=F}"]["sum"] == 0.5
    assert snap["gauges"]["queue_depth{filter=F}"]["max"] == 4.0
    assert snap["counters"][
        "sched_picks{policy=demand_driven,stream=s}"] == 1
    assert snap["counters"]["wire_frames{stream=s}"] == 1
    assert snap["counters"]["records_written"] == 12
    assert snap["histograms"]["chunk_stage_seconds{stage=write}"]["count"] == 1


# -- exporters -------------------------------------------------------------


def _sample_events():
    return [
        TraceEvent(ts=1.0, kind="copy.start", filter="RFR", copy=0),
        TraceEvent(ts=1.5, kind="chunk.read", filter="RFR", copy=0, dur=0.2,
                   attrs={"bytes": 10}),
        TraceEvent(ts=1.6, kind="queue.depth", filter="IIC", copy=0,
                   attrs={"depth": 2}),
        TraceEvent(ts=1.7, kind="sched.pick",
                   attrs={"stream": "s", "policy": "rr", "dest": 0}),
        TraceEvent(ts=2.0, kind="chunk.stitch", filter="IIC", copy=0, dur=0.3,
                   chunk=(0, 0, 0, 0)),
    ]


def test_chrome_export_shape():
    doc = to_chrome_json(_sample_events())
    evs = doc["traceEvents"]
    phases = {e["ph"] for e in evs}
    assert {"M", "X", "C", "i"} <= phases
    spans = [e for e in evs if e["ph"] == "X"]
    assert any("chunk.stitch" in s["name"] for s in spans)
    for s in spans:
        assert s["dur"] > 0
        assert s["ts"] >= 0
    meta = [e for e in evs if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert {"RFR", "IIC"} <= names


def test_chrome_write_is_valid_json(tmp_path):
    path = str(tmp_path / "trace.json")
    write_chrome_trace(_sample_events(), path)
    doc = json.load(open(path))
    assert doc["traceEvents"]


def test_jsonl_roundtrip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    evs = _sample_events()
    write_jsonl(evs, path)
    back = read_jsonl(path)
    assert back == sorted(evs, key=lambda e: e.ts)


def test_format_summary_mentions_filters_and_stages():
    text = format_summary(_sample_events())
    assert "RFR" in text and "chunk.stitch" in text


def test_events_from_sim_spans():
    spans = {
        ("HMP", 0): [(0.0, 1.0, "compute"), (1.0, 1.5, "write")],
        ("RFR", 0): [(0.0, 0.2, "read")],
    }
    evs = events_from_sim_spans(spans, t0=100.0)
    validate_events(evs)
    kinds = sorted(e.kind for e in evs)
    assert kinds == ["chunk.cooccur", "chunk.read", "chunk.write"]
    assert all(e.ts >= 100.0 for e in evs)
    compute = next(e for e in evs if e.kind == "chunk.cooccur")
    assert compute.dur == 1.0 and compute.filter == "HMP"

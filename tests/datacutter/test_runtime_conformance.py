"""One semantics, three runtimes (four execution configurations).

Every test here runs against the threaded runtime, the multiprocessing
runtime on both of its transports (pipe and shared-memory), and the
distributed TCP runtime (three loopback agents), so the newest backend
is held to the exact stream-policy / end-of-stream / retry-dedup /
deposit semantics of the ones that predate it.

Filter classes live at module level so forked children can run them.
"""

import sys

import pytest

from repro.datacutter.faults import (
    NO_RETRY,
    FaultPlan,
    PipelineError,
    RetryPolicy,
)
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.net import DistRuntime
from repro.datacutter.runtime_local import LocalRuntime
from repro.datacutter.runtime_mp import MPRuntime

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

RUNTIMES = ("threads", "processes", "processes-shm", "distributed")
COUNT = 20


def execute(kind, graph, *, retry=None, faults=None, max_queue=64):
    if kind == "threads":
        rt = LocalRuntime(graph, max_queue=max_queue, retry=retry, faults=faults)
        return rt.run(timeout=60)
    if kind in ("processes", "processes-shm"):
        rt = MPRuntime(
            graph, max_queue=max_queue, retry=retry, faults=faults,
            transport="shm" if kind == "processes-shm" else "pipe",
            # Exercise the slab path even for these small payloads.
            shm_threshold=1 if kind == "processes-shm" else 64 << 10,
        )
        return rt.run(timeout=60)
    rt = DistRuntime(
        graph, hosts=["127.0.0.1"] * 3, max_queue=max_queue,
        retry=retry, faults=faults,
    )
    return rt.run(timeout=120)


class Producer(Filter):
    def __init__(self, count=COUNT):
        self.count = count

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []
        self.finalized = 0

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        self.finalized += 1
        ctx.deposit("collected", sorted(self.items))
        ctx.deposit("finalize_calls", self.finalized)


class Exploder(Filter):
    def process(self, stream, buffer, ctx):
        raise ValueError("kaboom")


class ExplicitProducer(Filter):
    """Routes item i to doubler copy i % 3 by explicit destination."""

    def generate(self, ctx):
        for i in range(COUNT):
            ctx.send("out", i, size_bytes=8, dest_copy=i % 3)


class CopyTagger(Filter):
    """Deposits which copy saw which items (explicit-routing check)."""

    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit(f"copy{self.copy_index}", sorted(self.items))

    def initialize(self, ctx):
        self.copy_index = ctx.copy_index


def pipeline(doubler_copies=1, producer_copies=1, policy="demand_driven",
             count=COUNT):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count), copies=producer_copies)
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy=policy)
    g.connect("D", "out", "C")
    return g


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestConformance:
    def test_linear_pipeline_deposits(self, runtime):
        result = execute(runtime, pipeline())
        assert result.deposits("collected") == [[2 * i for i in range(COUNT)]]

    @pytest.mark.parametrize("policy", ["round_robin", "demand_driven"])
    def test_stream_policies_deliver_exactly_once(self, runtime, policy):
        result = execute(runtime, pipeline(doubler_copies=3, policy=policy))
        assert result.deposits("collected") == [[2 * i for i in range(COUNT)]]

    def test_explicit_routing_lands_on_named_copy(self, runtime):
        g = FilterGraph()
        g.add_filter("P", ExplicitProducer)
        g.add_filter("T", CopyTagger, copies=3)
        g.connect("P", "out", "T", policy="explicit")
        result = execute(runtime, g)
        for c in range(3):
            assert result.deposits(f"copy{c}") == [
                [i for i in range(COUNT) if i % 3 == c]
            ]

    def test_eos_with_multiple_producers(self, runtime):
        result = execute(
            runtime, pipeline(producer_copies=2, doubler_copies=2)
        )
        (items,) = result.deposits("collected")
        assert items == sorted([2 * i for i in range(COUNT)] * 2)

    def test_downstream_finalizes_exactly_once(self, runtime):
        result = execute(runtime, pipeline(doubler_copies=3))
        assert result.deposits("finalize_calls") == [1]

    def test_dedup_under_retry(self, runtime):
        # Two injected transient failures: the retried buffer must be
        # processed to completion exactly once — no duplicates, no gaps.
        plan = FaultPlan(seed=0).fail_process("D", 1.0, max_failures=2)
        result = execute(
            runtime,
            pipeline(doubler_copies=1),
            retry=RetryPolicy(max_attempts=5, backoff=0.001),
            faults=plan,
        )
        assert result.deposits("collected") == [[2 * i for i in range(COUNT)]]
        assert result.retries >= 2
        assert result.failed_copies == []

    def test_crashed_copy_rerouted_to_survivors(self, runtime):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0)
        result = execute(runtime, pipeline(doubler_copies=3), faults=plan)
        assert result.deposits("collected") == [[2 * i for i in range(COUNT)]]
        assert result.reroutes >= 1
        (failure,) = result.failed_copies
        assert failure.filter_name == "D" and failure.copy_index == 0
        assert failure.recovered and failure.kind == "crash"

    def test_unrecoverable_failure_raises_structured(self, runtime):
        g = FilterGraph()
        g.add_filter("P", lambda: Producer(3))
        g.add_filter("X", Exploder)
        g.connect("P", "out", "X")
        with pytest.raises(PipelineError) as exc:
            execute(runtime, g, retry=NO_RETRY)
        assert any(f.filter_name == "X" for f in exc.value.failures)

    def test_buffer_accounting(self, runtime):
        result = execute(runtime, pipeline())
        assert result.buffers_sent["P:out"] == COUNT
        assert result.buffers_sent["D:out"] == COUNT

    def test_wire_bytes_reported_by_serializing_runtimes(self, runtime):
        result = execute(runtime, pipeline())
        if runtime == "threads":
            assert result.wire_bytes == {}
        else:
            assert result.wire_bytes["P:out"] > 0
            assert result.wire_bytes["D:out"] > 0
        if runtime == "processes-shm":
            # shm_threshold=1 in execute(): even these int payloads have
            # no ndarray buffers, so everything stays in-band and the
            # per-link accounting must still exist (all zeros).
            assert set(result.shm_bytes) == {"P:out", "D:out"}
        else:
            assert result.shm_bytes == {}

"""Distributed-runtime specifics: placement, connection faults, recovery.

Cross-runtime semantics are covered by ``test_runtime_conformance``;
these tests exercise what only the TCP runtime has — worker agents,
per-connection fault injection, agent-death detection and rerouting,
and the default placement policy.
"""

import sys

import pytest

from repro.datacutter.faults import FaultPlan, PipelineError
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.net import DistRuntime, default_placement
from repro.datacutter.placement import Placement

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

COUNT = 24


class Producer(Filter):
    def __init__(self, count=COUNT):
        self.count = count

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit("collected", sorted(self.items))


def pipeline(doubler_copies=3, count=COUNT):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count))
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy="demand_driven")
    g.connect("D", "out", "C")
    return g


def run_dist(graph, hosts=None, **kw):
    rt = DistRuntime(graph, hosts=hosts or ["127.0.0.1"] * 3, **kw)
    return rt.run(timeout=120)


EXPECTED = [[2 * i for i in range(COUNT)]]


class TestDefaultPlacement:
    def test_endpoints_on_head_node_workers_spread(self):
        g = pipeline(doubler_copies=4)
        p = default_placement(g, ["n0", "n1", "n2"])
        assert p.node_of("P", 0) == "n0"
        assert p.node_of("C", 0) == "n0"
        # Replicated transparent-input copies round-robin over n1..n2.
        workers = {p.node_of("D", i) for i in range(4)}
        assert workers == {"n1", "n2"}

    def test_single_node_takes_everything(self):
        g = pipeline()
        p = default_placement(g, ["solo"])
        for i in range(3):
            assert p.node_of("D", i) == "solo"

    def test_explicit_input_copies_stay_on_head_node(self):
        g = FilterGraph()
        g.add_filter("P", Producer)
        g.add_filter("D", Doubler, copies=3)
        g.connect("P", "out", "D", policy="explicit")
        p = default_placement(g, ["n0", "n1"])
        for i in range(3):
            assert p.node_of("D", i) == "n0"


class TestValidation:
    def test_empty_host_list_rejected(self):
        with pytest.raises(ValueError):
            DistRuntime(pipeline(), hosts=[])

    def test_placement_must_cover_every_copy(self):
        g = pipeline()
        p = Placement()
        p.place("P", 0, "127.0.0.1")
        with pytest.raises(ValueError):
            DistRuntime(g, hosts=["127.0.0.1"], placement=p)

    def test_connection_fault_unknown_agent_rejected(self):
        plan = FaultPlan().crash_agent(9)
        with pytest.raises(ValueError):
            DistRuntime(pipeline(), hosts=["127.0.0.1"] * 2, faults=plan)

    def test_duplicate_hosts_get_distinct_node_names(self):
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 3)
        assert len(set(rt.node_names)) == 3


class TestConnectionFaults:
    def test_dropped_deliveries_are_redelivered(self):
        plan = FaultPlan(seed=2).drop_deliveries(1, probability=0.3,
                                                 max_drops=5)
        result = run_dist(pipeline(), faults=plan)
        assert result.deposits("collected") == EXPECTED
        assert result.retries >= 1
        assert result.failed_copies == []

    def test_delayed_connection_still_completes(self):
        plan = FaultPlan(seed=4).delay_connection(2, delay=0.05, max_delays=4)
        result = run_dist(pipeline(), faults=plan)
        assert result.deposits("collected") == EXPECTED

    def test_agent_crash_reroutes_to_survivors(self):
        plan = FaultPlan(seed=7).crash_agent(1, after_buffers=1)
        result = run_dist(pipeline(doubler_copies=4), faults=plan)
        assert result.deposits("collected") == EXPECTED
        assert result.reroutes >= 1
        assert result.failed_copies != []
        assert all(f.recovered and f.kind == "crash"
                   for f in result.failed_copies)
        assert {f.filter_name for f in result.failed_copies} == {"D"}

    def test_agent_crash_by_node_name(self):
        rt = DistRuntime(pipeline(doubler_copies=4),
                         hosts=["127.0.0.1"] * 3)
        name = rt.node_names[2]
        plan = FaultPlan(seed=9).crash_agent(name, after_buffers=1)
        result = run_dist(pipeline(doubler_copies=4), faults=plan)
        assert result.deposits("collected") == EXPECTED

    def test_head_agent_crash_is_fatal(self):
        # Agent 0 hosts the source and sink: nothing to reroute to.
        plan = FaultPlan().crash_agent(0, after_buffers=1)
        with pytest.raises(PipelineError) as exc:
            run_dist(pipeline(), faults=plan)
        assert any(f.kind == "crash" for f in exc.value.failures)


class TestAccounting:
    def test_wire_bytes_per_stream(self):
        result = run_dist(pipeline())
        assert set(result.wire_bytes) == {"P:out", "D:out"}
        assert all(v > 0 for v in result.wire_bytes.values())

    def test_matches_local_runtime(self):
        from repro.datacutter.runtime_local import LocalRuntime

        a = LocalRuntime(pipeline()).run(timeout=60).deposits("collected")
        b = run_dist(pipeline()).deposits("collected")
        assert a == b

"""Elastic membership: live join, graceful drain, and their edge cases.

Integration tests run real loopback agents through the full TCP stack
(linux only, fork start method); the unit tests at the bottom drive the
head's internal state machine directly to pin down races that are hard
to provoke through real sockets — an agent going silent *during* a
drain, and a late heartbeat arriving after the agent was declared dead.
"""

import sys
import threading
import time

import pytest

from repro.datacutter.faults import (
    DrainAgent,
    FaultPlan,
    JoinAgent,
    validate_schedule,
)
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.net import DistRuntime
from repro.datacutter.net import codec

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

COUNT = 40


class Producer(Filter):
    def __init__(self, count=COUNT, delay=0.008):
        self.count = count
        self.delay = delay

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", i, size_bytes=8)
            time.sleep(self.delay)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        time.sleep(0.004)
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit("collected", sorted(self.items))


def pipeline(doubler_copies=3, count=COUNT):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count))
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy="demand_driven")
    g.connect("D", "out", "C")
    return g


EXPECTED = [sorted(2 * i for i in range(COUNT))]


class TestJoin:
    def test_scheduled_join_keeps_output_identical(self):
        rt = DistRuntime(
            pipeline(),
            hosts=["127.0.0.1"] * 3,
            elastic=True,
            trace=True,
            schedule=[JoinAgent(at=0.1)],
        )
        res = rt.run(timeout=120)
        assert res.results["collected"] == EXPECTED
        assert res.joined_agents == ["127.0.0.1#3"]
        assert res.failed_copies == []
        assert res.reroutes == 0
        kinds = {ev.kind for ev in res.trace.events}
        assert "agent.join" in kinds
        # The joiner hosted a live copy: its agent shows up on copy
        # lifecycle events batched home with the terminal messages.
        joined = {
            ev.attrs.get("agent")
            for ev in res.trace.events
            if ev.kind == "copy.start"
        }
        assert "127.0.0.1#3" in joined

    def test_join_requires_elastic(self):
        with pytest.raises(ValueError, match="elastic"):
            DistRuntime(
                pipeline(),
                hosts=["127.0.0.1"] * 3,
                schedule=[JoinAgent(at=0.1)],
            )

    def test_add_agent_outside_run_rejected(self):
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 3, elastic=True)
        rt._reset()
        with pytest.raises(RuntimeError, match="active run"):
            rt.add_agent()

    def test_runs_back_to_back_do_not_leak_membership(self):
        rt = DistRuntime(
            pipeline(),
            hosts=["127.0.0.1"] * 3,
            elastic=True,
            schedule=[JoinAgent(at=0.1)],
        )
        first = rt.run(timeout=120)
        second = rt.run(timeout=120)
        assert first.results["collected"] == EXPECTED
        assert second.results["collected"] == EXPECTED
        # The join must not have grown the constructor-time host list.
        assert rt.hosts == ["127.0.0.1"] * 3
        assert second.joined_agents == ["127.0.0.1#3"]


class TestDrain:
    def test_scheduled_drain_is_churn_not_failure(self):
        rt = DistRuntime(
            pipeline(),
            hosts=["127.0.0.1"] * 3,
            trace=True,
            schedule=[DrainAgent(at=0.15, agent=1, deadline=60.0)],
        )
        res = rt.run(timeout=120)
        assert res.results["collected"] == EXPECTED
        assert res.drained_agents == ["127.0.0.1#1"]
        # The acceptance bar: a planned leave contributes nothing to
        # the failure counters.
        assert res.failed_copies == []
        assert res.reroutes == 0
        assert res.retries == 0
        kinds = {ev.kind for ev in res.trace.events}
        assert {"agent.drain", "agent.detach"} <= kinds

    def test_drain_needs_no_elastic_flag(self):
        # Only late *attach* needs elastic=True; leaving is always legal.
        rt = DistRuntime(
            pipeline(),
            hosts=["127.0.0.1"] * 3,
            schedule=[DrainAgent(at=0.15, agent=2)],
        )
        res = rt.run(timeout=120)
        assert res.results["collected"] == EXPECTED
        assert res.drained_agents == ["127.0.0.1#2"]

    def test_drain_agent_api_mid_run(self):
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 3)
        drained = {}

        def drain_later():
            time.sleep(0.15)
            drained["event"] = rt.drain_agent(1, deadline=60.0)

        t = threading.Timer(0.0, drain_later)
        t.start()
        res = rt.run(timeout=120)
        t.join()
        assert res.results["collected"] == EXPECTED
        assert res.drained_agents == ["127.0.0.1#1"]
        assert drained["event"].is_set()

    def test_draining_the_head_node_is_rejected(self):
        # Agent 0 hosts the source and the sink: undrainable.
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 3)
        errors = []

        def drain_head():
            time.sleep(0.1)
            try:
                rt.drain_agent(0)
            except ValueError as exc:
                errors.append(str(exc))

        t = threading.Timer(0.0, drain_head)
        t.start()
        res = rt.run(timeout=120)
        t.join()
        assert res.results["collected"] == EXPECTED
        assert errors and "source" in errors[0]
        assert res.drained_agents == []

    def test_draining_last_live_copy_is_rejected(self):
        # Two hosts: all D copies land on agent 1; draining it would
        # leave the stream with no consumers.
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 2)
        errors = []

        def drain_only_worker():
            time.sleep(0.1)
            try:
                rt.drain_agent(1)
            except ValueError as exc:
                errors.append(str(exc))

        t = threading.Timer(0.0, drain_only_worker)
        t.start()
        res = rt.run(timeout=120)
        t.join()
        assert res.results["collected"] == EXPECTED
        assert errors and "last live copy" in errors[0]

    def test_drain_deadline_escalates_to_crash(self):
        # A straggler copy holds its buffer far past the drain deadline:
        # the planned leave must be reclassified as a crash — the agent
        # lands in failed_copies (recovered via reroute), never in
        # drained_agents.
        plan = FaultPlan(seed=3).delay_buffers(
            "D", delay=6.0, copy_index=0, max_delays=1
        )
        rt = DistRuntime(
            pipeline(),
            hosts=["127.0.0.1"] * 3,
            faults=plan,
            heartbeat_timeout=30.0,
            schedule=[DrainAgent(at=0.1, agent=1, deadline=0.4)],
        )
        res = rt.run(timeout=120)
        assert res.results["collected"] == EXPECTED
        assert res.drained_agents == []
        assert res.failed_copies != []
        assert all(f.recovered for f in res.failed_copies)
        assert any("drain deadline" in f.error for f in res.failed_copies)
        assert res.reroutes >= 1


class TestHeartbeatConfig:
    def test_env_var_is_read_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_HEARTBEAT_TIMEOUT", "7.5")
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 2)
        assert rt.heartbeat_timeout == 7.5

    def test_explicit_value_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_HEARTBEAT_TIMEOUT", "7.5")
        rt = DistRuntime(
            pipeline(), hosts=["127.0.0.1"] * 2, heartbeat_timeout=2.0
        )
        assert rt.heartbeat_timeout == 2.0

    def test_default_is_five_seconds(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIST_HEARTBEAT_TIMEOUT", raising=False)
        rt = DistRuntime(pipeline(), hosts=["127.0.0.1"] * 2)
        assert rt.heartbeat_timeout == 5.0

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            DistRuntime(
                pipeline(), hosts=["127.0.0.1"] * 2, heartbeat_timeout=0
            )

    def test_pipeline_kwargs_are_distributed_only(self, tmp_path):
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.pipeline.run import run_pipeline
        from repro.storage.dataset import write_dataset

        vol = generate_phantom(PhantomConfig(shape=(8, 8, 4, 3), seed=0))
        root = str(tmp_path / "ds")
        write_dataset(vol, root, num_nodes=1)
        with pytest.raises(ValueError, match="elastic"):
            run_pipeline(root, runtime="threads", elastic=True)
        with pytest.raises(ValueError, match="schedule"):
            run_pipeline(
                root, runtime="threads",
                schedule=[DrainAgent(at=0.1, agent=1)],
            )
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            run_pipeline(root, runtime="threads", heartbeat_timeout=2.0)


class TestScheduleValidation:
    def test_unknown_drain_target_needs_elastic(self):
        with pytest.raises(ValueError):
            validate_schedule(
                [DrainAgent(at=0.1, agent=7)], ["a", "b"], elastic=False
            )
        validate_schedule(
            [DrainAgent(at=0.1, agent=7)], ["a", "b"], elastic=True
        )

    def test_hello_protocol_versioning(self):
        hello = codec.parse_hello(codec.make_hello(2, "tok", 123))
        assert hello.index == 2
        assert hello.token == "tok"
        assert hello.pid == 123
        assert hello.version == codec.PROTOCOL_VERSION
        legacy = codec.parse_hello(("hello", 1, "tok", 99))
        assert legacy.version == 1  # pre-elastic agents identify as v1
        assert codec.parse_hello(("nonsense",)) is None


# ----------------------------------------------------------------------
# Head-state unit tests: drive the internal machine without sockets.


def _head(doubler_copies=3):
    rt = DistRuntime(pipeline(doubler_copies), hosts=["127.0.0.1"] * 3)
    rt._reset()
    rt._running = True
    return rt


class TestHeadStateMachine:
    def test_silence_during_drain_reclassified_as_crash(self):
        rt = _head()
        conn = rt._conns[1]
        conn.sock = object()  # attached enough for drain bookkeeping
        victims = [
            key for key, a in rt._agent_of.items() if a == 1
        ]
        assert victims, "placement should put copies on agent 1"
        conn.draining = True
        conn.drain_state = "draining"
        for key in victims:
            rt._status[key] = "draining"
        rt._on_agent_gone(conn, "went silent mid-drain")
        assert conn.drain_state == "failed"
        assert conn.drained.is_set()
        assert rt._drained_agents == []
        for key in victims:
            assert rt._status[key] == "failed"
        assert rt._failures and all(f.recovered for f in rt._failures)

    def test_late_heartbeat_does_not_resurrect_dead_agent(self):
        rt = _head()
        conn = rt._conns[1]
        rt._on_agent_gone(conn, "heartbeat timeout")
        assert conn.dead
        conn.last_seen = 0.0
        rt._on_frame(conn, ("hb",))
        # The frame was dropped wholesale: liveness not refreshed, so
        # the agent stays dead instead of flapping back to life.
        assert conn.last_seen == 0.0

    def test_frames_from_dead_connection_are_ignored(self):
        rt = _head()
        conn = rt._conns[1]
        rt._on_agent_gone(conn, "heartbeat timeout")
        before = dict(rt._results)
        rt._on_frame(conn, ("deposit", "collected", [1, 2, 3]))
        assert rt._results == before

    def test_detached_agent_socket_close_is_not_a_crash(self):
        rt = _head()
        conn = rt._conns[1]
        conn.detached = True
        failures_before = len(rt._failures)
        rt._on_agent_gone(conn, "connection lost (EOF)")
        assert conn.dead
        assert len(rt._failures) == failures_before
        for key, a in rt._agent_of.items():
            if a == 1:
                assert rt._status[key] == "running"

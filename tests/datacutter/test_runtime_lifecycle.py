"""Runtime lifecycle (ISSUE 7 satellites 1 + 2): context-manager
protocol, idempotent close(), rerunnability, and the same-instance
concurrent-run guard on every runtime."""

import glob
import threading
import time

import pytest

from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_local import LocalRuntime
from repro.datacutter.runtime_mp import MPRuntime


class Producer(Filter):
    def __init__(self, count=10):
        self.count = count

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", i, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit("collected", sorted(self.items))


class Slow(Filter):
    """Sleeps per buffer so a run stays in flight long enough to race.

    Works across process boundaries (unlike an Event), which the MP
    runtime's forked copies could never see."""

    def process(self, stream, buffer, ctx):
        time.sleep(0.3)
        ctx.send("out", buffer.payload, size_bytes=8)


def simple_graph(count=20):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count=count))
    g.add_filter("C", Collector)
    g.connect("P", "out", "C")
    return g


def stalling_graph():
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count=5))
    g.add_filter("S", Slow)
    g.add_filter("C", Collector)
    g.connect("P", "out", "S")
    g.connect("S", "out", "C")
    return g


@pytest.mark.parametrize("runtime_cls", [LocalRuntime, MPRuntime])
class TestLifecycle:
    def test_context_manager_runs_and_closes(self, runtime_cls):
        with runtime_cls(simple_graph()) as rt:
            result = rt.run()
        (items,) = result.deposits("collected")
        assert items == list(range(20))

    def test_close_is_idempotent(self, runtime_cls):
        rt = runtime_cls(simple_graph())
        rt.run()
        rt.close()
        rt.close()  # second close is a no-op, not an error

    def test_close_before_any_run(self, runtime_cls):
        runtime_cls(simple_graph()).close()

    def test_runtime_is_rerunnable(self, runtime_cls):
        with runtime_cls(simple_graph()) as rt:
            first = rt.run()
            second = rt.run()
        assert first.deposits("collected") == second.deposits("collected")

    def test_concurrent_run_on_same_instance_raises(self, runtime_cls):
        rt = runtime_cls(stalling_graph(), max_queue=4)
        started = threading.Event()
        result = {}

        def first_run():
            started.set()
            result["run"] = rt.run(timeout=60)

        t = threading.Thread(target=first_run)
        t.start()
        started.wait(5)
        time.sleep(0.1)  # let the first run take the guard
        try:
            with pytest.raises(RuntimeError, match="already executing"):
                rt.run()
        finally:
            t.join(timeout=60)
            rt.close()
        (items,) = result["run"].deposits("collected")
        assert items == list(range(5))  # the in-flight run still completed


class TestMPTeardown:
    def test_no_leaked_children_after_exception_path(self):
        import multiprocessing as mp

        before = len(mp.active_children())
        rt = MPRuntime(simple_graph())
        rt.run()
        rt.close()
        # Give reaped children a beat to disappear from the list.
        deadline = time.time() + 5
        while time.time() < deadline and len(mp.active_children()) > before:
            time.sleep(0.05)
        assert len(mp.active_children()) <= before

    def test_shm_transport_leaves_no_segments(self):
        with MPRuntime(simple_graph(), transport="shm") as rt:
            rt.run()
        assert glob.glob("/dev/shm/reproshm*") == []

    def test_external_pool_survives_close(self):
        import multiprocessing as mp

        from repro.datacutter.net import shm

        pool = shm.ShmPool(mp.get_context("fork"), segments=2,
                           segment_bytes=1 << 20)
        try:
            with MPRuntime(simple_graph(), transport="shm",
                           shm_pool=pool) as rt:
                rt.run()
            # close() must not destroy a pool it does not own.
            assert pool.stats() is not None
        finally:
            pool.destroy()
        assert glob.glob("/dev/shm/reproshm*") == []

    def test_external_pool_requires_shm_transport(self):
        import multiprocessing as mp

        from repro.datacutter.net import shm

        pool = shm.ShmPool(mp.get_context("fork"), segments=2,
                           segment_bytes=1 << 20)
        try:
            with pytest.raises(ValueError, match="shm"):
                MPRuntime(simple_graph(), transport="pipe", shm_pool=pool)
        finally:
            pool.destroy()

"""Integration tests for the threaded local runtime."""

import threading

import pytest

from repro.datacutter.buffers import DataBuffer
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_local import LocalRuntime


class Producer(Filter):
    def __init__(self, count=10, value=1):
        self.count = count
        self.value = value

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send("out", self.value * i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit("collected", sorted(self.items))


def pipeline(producer_copies=1, doubler_copies=1, policy="demand_driven"):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count=20), copies=producer_copies)
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy=policy)
    g.connect("D", "out", "C")
    return g


class TestBasicExecution:
    def test_linear_pipeline(self):
        result = LocalRuntime(pipeline()).run()
        (items,) = result.deposits("collected")
        assert items == sorted(2 * i for i in range(20))

    def test_replicated_middle_stage(self):
        result = LocalRuntime(pipeline(doubler_copies=4)).run()
        (items,) = result.deposits("collected")
        assert items == sorted(2 * i for i in range(20))

    def test_replicated_producers(self):
        result = LocalRuntime(pipeline(producer_copies=3, doubler_copies=2)).run()
        (items,) = result.deposits("collected")
        assert len(items) == 60
        assert items == sorted(3 * [2 * i for i in range(20)])

    @pytest.mark.parametrize("policy", ["round_robin", "demand_driven"])
    def test_policies_preserve_data(self, policy):
        result = LocalRuntime(pipeline(doubler_copies=3, policy=policy)).run()
        (items,) = result.deposits("collected")
        assert len(items) == 20

    def test_buffers_sent_accounting(self):
        result = LocalRuntime(pipeline(doubler_copies=2)).run()
        assert result.buffers_sent["P:out"] == 20
        assert result.buffers_sent["D:out"] == 20

    def test_busy_time_recorded(self):
        result = LocalRuntime(pipeline()).run()
        assert ("P", 0) in result.busy_time
        assert result.filter_busy_time("D") >= 0.0
        assert result.elapsed > 0


class TestExplicitRouting:
    def test_explicit_dest_copy(self):
        class KeyedProducer(Filter):
            def generate(self, ctx):
                for i in range(12):
                    ctx.send("out", i, dest_copy=i % 3)

        class CopyCollector(Filter):
            def __init__(self):
                self.items = []

            def process(self, stream, buffer, ctx):
                self.items.append(buffer.payload)

            def finalize(self, ctx):
                ctx.deposit(f"copy{ctx.copy_index}", sorted(self.items))

        g = FilterGraph()
        g.add_filter("P", KeyedProducer)
        g.add_filter("C", CopyCollector, copies=3)
        g.connect("P", "out", "C", policy="explicit")
        result = LocalRuntime(g).run()
        assert result.deposits("copy0") == [[0, 3, 6, 9]]
        assert result.deposits("copy1") == [[1, 4, 7, 10]]
        assert result.deposits("copy2") == [[2, 5, 8, 11]]

    def test_explicit_without_dest_fails(self):
        g = FilterGraph()
        g.add_filter("P", lambda: Producer(count=1))
        g.add_filter("C", Collector)
        g.connect("P", "out", "C", policy="explicit")
        with pytest.raises(RuntimeError):
            LocalRuntime(g).run()

    def test_dest_copy_on_transparent_stream_fails(self):
        class BadProducer(Filter):
            def generate(self, ctx):
                ctx.send("out", 0, dest_copy=0)

        g = FilterGraph()
        g.add_filter("P", BadProducer)
        g.add_filter("C", Collector)
        g.connect("P", "out", "C")
        with pytest.raises(RuntimeError):
            LocalRuntime(g).run()


class TestErrorsAndEdgeCases:
    def test_filter_exception_propagates(self):
        class Exploder(Filter):
            def process(self, stream, buffer, ctx):
                raise ValueError("boom")

        g = FilterGraph()
        g.add_filter("P", lambda: Producer(count=3))
        g.add_filter("X", Exploder)
        g.connect("P", "out", "X")
        with pytest.raises(RuntimeError, match="boom"):
            LocalRuntime(g).run()

    def test_unknown_output_stream(self):
        class BadSender(Filter):
            def generate(self, ctx):
                ctx.send("nope", 1)

        g = FilterGraph()
        g.add_filter("P", BadSender)
        g.add_filter("C", Collector)
        g.connect("P", "out", "C")
        with pytest.raises(RuntimeError):
            LocalRuntime(g).run()

    def test_empty_producer(self):
        g = pipeline()
        g.filters["P"].factory = lambda: Producer(count=0)
        result = LocalRuntime(g).run()
        assert result.deposits("collected") == [[]]

    def test_fan_in_two_streams(self):
        class TwoStreamCollector(Filter):
            def __init__(self):
                self.seen = []

            def process(self, stream, buffer, ctx):
                self.seen.append((stream, buffer.payload))

            def finalize(self, ctx):
                ctx.deposit("seen", sorted(self.seen))

        class NamedProducer(Filter):
            def __init__(self, stream, value):
                self.stream = stream
                self.value = value

            def generate(self, ctx):
                for i in range(2):
                    ctx.send(self.stream, self.value * i)

        g = FilterGraph()
        g.add_filter("P1", lambda: NamedProducer("s1", 1))
        g.add_filter("P2", lambda: NamedProducer("s2", 10))
        g.add_filter("C", TwoStreamCollector)
        g.connect("P1", "s1", "C")
        g.connect("P2", "s2", "C")
        result = LocalRuntime(g).run()
        (seen,) = result.deposits("seen")
        assert seen == [("s1", 0), ("s1", 1), ("s2", 0), ("s2", 10)]

    def test_duplicate_input_stream_names_rejected(self):
        g = FilterGraph()
        g.add_filter("P1", Producer)
        g.add_filter("P2", Producer)
        g.add_filter("C", Collector)
        g.connect("P1", "s", "C")
        g.connect("P2", "s", "C")
        with pytest.raises(ValueError):
            LocalRuntime(g)

    def test_backpressure_small_queue(self):
        """Bounded queues must not deadlock an acyclic pipeline."""
        g = pipeline(doubler_copies=2)
        result = LocalRuntime(g, max_queue=2).run()
        (items,) = result.deposits("collected")
        assert len(items) == 20

    def test_pipelining_overlaps_stages(self):
        """A slow consumer must start before the producer finishes."""
        order = []
        lock = threading.Lock()

        class LoggingProducer(Filter):
            def generate(self, ctx):
                for i in range(50):
                    with lock:
                        order.append(("produce", i))
                    ctx.send("out", i)

        class LoggingConsumer(Filter):
            def process(self, stream, buffer, ctx):
                with lock:
                    order.append(("consume", buffer.payload))

        g = FilterGraph()
        g.add_filter("P", LoggingProducer)
        g.add_filter("C", LoggingConsumer)
        g.connect("P", "out", "C")
        LocalRuntime(g, max_queue=4).run()
        first_consume = order.index(("consume", 0))
        assert first_consume < len(order) - 1  # consumption interleaved
        produced_before = sum(1 for e in order[:first_consume] if e[0] == "produce")
        assert produced_before < 50  # producer had not finished

"""Tests for the multiprocessing runtime.

Module-level filter classes are used so children can reconstruct them
after fork; behaviour must match the threaded runtime on the same graphs.
"""

import sys

import pytest

from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_mp import MPRuntime

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)


class Producer(Filter):
    def __init__(self, count=20, stream="out"):
        self.count = count
        self.stream = stream

    def generate(self, ctx):
        for i in range(self.count):
            ctx.send(self.stream, i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit("collected", sorted(self.items))


class Exploder(Filter):
    def process(self, stream, buffer, ctx):
        raise ValueError("kaboom")


def pipeline(producer_copies=1, doubler_copies=1, policy="demand_driven"):
    g = FilterGraph()
    g.add_filter("P", Producer, copies=producer_copies)
    g.add_filter("D", Doubler, copies=doubler_copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D", policy=policy)
    g.connect("D", "out", "C")
    return g


class TestMPExecution:
    def test_linear_pipeline(self):
        result = MPRuntime(pipeline()).run(timeout=60)
        assert result.deposits("collected") == [[2 * i for i in range(20)]]

    def test_replicated_stage(self):
        result = MPRuntime(pipeline(doubler_copies=3)).run(timeout=60)
        (items,) = result.deposits("collected")
        assert items == sorted(2 * i for i in range(20))

    def test_multiple_producers(self):
        result = MPRuntime(pipeline(producer_copies=2, doubler_copies=2)).run(timeout=60)
        (items,) = result.deposits("collected")
        assert len(items) == 40

    @pytest.mark.parametrize("policy", ["round_robin", "demand_driven"])
    def test_policies(self, policy):
        result = MPRuntime(pipeline(doubler_copies=2, policy=policy)).run(timeout=60)
        (items,) = result.deposits("collected")
        assert len(items) == 20

    def test_buffer_accounting(self):
        result = MPRuntime(pipeline()).run(timeout=60)
        assert result.buffers_sent["P:out"] == 20
        assert result.buffers_sent["D:out"] == 20

    def test_busy_times_collected(self):
        result = MPRuntime(pipeline()).run(timeout=60)
        assert ("P", 0) in result.busy_time
        assert ("C", 0) in result.busy_time

    def test_error_propagates(self):
        g = FilterGraph()
        g.add_filter("P", lambda: Producer(count=3))
        g.add_filter("X", Exploder)
        g.connect("P", "out", "X")
        with pytest.raises(RuntimeError, match="kaboom"):
            MPRuntime(g).run(timeout=60)

    def test_matches_threaded_runtime(self):
        from repro.datacutter.runtime_local import LocalRuntime

        g1 = pipeline(doubler_copies=2)
        g2 = pipeline(doubler_copies=2)
        a = LocalRuntime(g1).run().deposits("collected")
        b = MPRuntime(g2).run(timeout=60).deposits("collected")
        assert a == b


class TestMPPipelineEndToEnd:
    def test_full_haralick_pipeline(self, tmp_path):
        import numpy as np

        from repro.core.analysis import HaralickConfig, haralick_transform
        from repro.core.quantization import quantize_linear
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.filters.messages import TextureParams
        from repro.pipeline.config import AnalysisConfig
        from repro.pipeline.run import run_pipeline
        from repro.storage.dataset import write_dataset

        vol = generate_phantom(PhantomConfig(shape=(14, 12, 6, 4), seed=6))
        root = str(tmp_path / "ds")
        write_dataset(vol, root, num_nodes=2)
        params = TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "contrast"),
            intensity_range=(0.0, 65535.0),
        )
        cfg = AnalysisConfig(
            texture=params, variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4), num_texture_copies=2,
        )
        result = run_pipeline(root, cfg, runtime="processes")
        q = quantize_linear(vol.data, 8, lo=0.0, hi=65535.0)
        want = haralick_transform(
            q,
            HaralickConfig(roi_shape=(3, 3, 3, 2), levels=8,
                           features=("asm", "contrast")),
            quantized=True,
        )
        np.testing.assert_allclose(result.volumes["asm"], want["asm"], atol=1e-12)
        np.testing.assert_allclose(result.volumes["contrast"], want["contrast"], atol=1e-10)

    def test_unknown_runtime_rejected(self, tmp_path):
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.pipeline.run import run_pipeline
        from repro.storage.dataset import write_dataset

        vol = generate_phantom(PhantomConfig(shape=(8, 8, 4, 3), seed=0))
        root = str(tmp_path / "ds")
        write_dataset(vol, root, num_nodes=1)
        with pytest.raises(ValueError):
            run_pipeline(root, runtime="carrier_pigeon")


class TestPollInterval:
    """``poll_interval`` validation: an explicit 0 must raise, not be
    silently replaced by the default through truthiness."""

    def test_zero_raises(self):
        with pytest.raises(ValueError, match="poll_interval"):
            MPRuntime(pipeline(), poll_interval=0)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="poll_interval"):
            MPRuntime(pipeline(), poll_interval=-0.5)

    def test_none_uses_default(self):
        from repro.datacutter.runtime_mp import _POLL

        rt = MPRuntime(pipeline(), poll_interval=None)
        assert rt.poll_interval == _POLL

    def test_explicit_value_is_kept(self):
        rt = MPRuntime(pipeline(), poll_interval=0.01)
        assert rt.poll_interval == 0.01

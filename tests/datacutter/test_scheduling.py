"""Unit tests for buffer scheduling policies."""

import pytest

from repro.datacutter.buffers import DataBuffer
from repro.datacutter.scheduling import (
    CopyState,
    DemandDrivenPolicy,
    ExplicitPolicy,
    RoundRobinPolicy,
    make_policy,
)


def states(n):
    return [CopyState(i) for i in range(n)]


def buf(size=100):
    return DataBuffer(payload=None, size_bytes=size)


class TestRoundRobin:
    def test_cycles(self):
        policy = RoundRobinPolicy()
        cs = states(3)
        picks = [policy.choose(cs, buf()) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_equal_assignment(self):
        """Paper 4.1: each copy receives roughly the same amount of data."""
        policy = RoundRobinPolicy()
        cs = states(4)
        for _ in range(100):
            idx = policy.choose(cs, buf())
            cs[idx].on_assign(buf())
        assert all(c.assigned == 25 for c in cs)

    def test_empty_copies(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy().choose([], buf())


class TestDemandDriven:
    def test_prefers_short_queue(self):
        policy = DemandDrivenPolicy()
        cs = states(3)
        cs[0].queued = 5
        cs[1].queued = 1
        cs[2].queued = 3
        assert policy.choose(cs, buf()) == 1

    def test_fast_consumer_attracts_more(self):
        """A much faster copy attracts most buffers once the slow one backs up.

        One buffer arrives per step; copy 0 can drain 2/step, copy 1 only
        1 every 4 steps, so copy 1's queue stays non-empty and the
        demand-driven scheduler steers ~3/4 of traffic to copy 0.
        """
        policy = DemandDrivenPolicy()
        cs = states(2)
        for step in range(400):
            idx = policy.choose(cs, buf())
            cs[idx].on_assign(buf())
            for _ in range(2):
                if cs[0].queued:
                    cs[0].on_consume()
            if step % 4 == 0 and cs[1].queued:
                cs[1].on_consume()
        assert cs[0].assigned > 2 * cs[1].assigned

    def test_deterministic_tie_break(self):
        policy = DemandDrivenPolicy()
        cs = states(3)
        assert policy.choose(cs, buf()) == 0
        cs[0].on_assign(buf())
        assert policy.choose(cs, buf()) == 1  # fewest assigned among ties


class TestExplicit:
    def test_requires_dest(self):
        policy = ExplicitPolicy()
        assert policy.requires_explicit_dest()
        with pytest.raises(RuntimeError):
            policy.choose(states(2), buf())


class TestCopyState:
    def test_consume_accounting(self):
        c = CopyState(0)
        c.on_assign(buf(10))
        c.on_assign(buf(20))
        assert c.queued == 2 and c.assigned == 2 and c.assigned_bytes == 30
        c.on_consume()
        assert c.queued == 1
        c.on_consume()
        with pytest.raises(RuntimeError):
            c.on_consume()


class TestMakePolicy:
    @pytest.mark.parametrize("name", ["round_robin", "demand_driven", "explicit"])
    def test_known(self, name):
        assert make_policy(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_policy("random")

    def test_fresh_state(self):
        a = make_policy("round_robin")
        b = make_policy("round_robin")
        cs = states(2)
        a.choose(cs, buf())
        assert b.choose(cs, buf()) == 0  # b has independent cycle state

"""The shared-memory transport: pool, framing, runtime, crash cleanup.

Covers the slab pool's allocation/refcount/fallback behavior in one
process, the dumps/loads framing (zero-copy receive, in-band fallback),
and the MPRuntime adoption: byte accounting, pool metrics, and — the
part that matters in production — that ``/dev/shm`` holds no leftover
``reproshm`` segments after normal runs, ``PipelineError`` aborts, and
hard-killed children caught only by the exitcode watcher.

Filter classes live at module level so forked children can run them.
"""

import gc
import multiprocessing as mp
import os
import sys

import numpy as np
import pytest

from repro.datacutter.faults import NO_RETRY, FaultPlan, PipelineError
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.net import codec, shm
from repro.datacutter.runtime_mp import MPRuntime

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)


def leaked_segments():
    """reproshm_* entries currently present in /dev/shm."""
    return [f for f in os.listdir("/dev/shm") if f.startswith(shm.NAME_PREFIX)]


@pytest.fixture
def pool():
    ctx = mp.get_context("fork")
    p = shm.ShmPool(ctx, segments=4, segment_bytes=1 << 20, threshold=1 << 10)
    yield p
    p.destroy()
    assert leaked_segments() == []


class TestPool:
    def test_acquire_release_recycles(self, pool):
        slot = pool.acquire(4096)
        assert slot is not None
        assert pool.stats()["in_use"] == 1
        pool.release(slot)
        assert pool.stats()["in_use"] == 0
        # The freed slab is allocatable again.
        assert pool.acquire(4096) is not None

    def test_sub_threshold_stays_inline_uncounted(self, pool):
        assert pool.acquire(pool.threshold - 1) is None
        st = pool.stats()
        assert st["fallbacks"] == 0 and st["hits"] == 0

    def test_oversize_counts_as_fallback(self, pool):
        assert pool.acquire(pool.segment_bytes + 1) is None
        st = pool.stats()
        assert st["fallbacks"] == 1
        assert st["fallback_bytes"] == pool.segment_bytes + 1

    def test_exhaustion_falls_back_instead_of_blocking(self, pool):
        slots = [pool.acquire(4096) for _ in range(pool.num_segments)]
        assert None not in slots
        assert pool.acquire(4096) is None  # empty free list: no block
        st = pool.stats()
        assert st["fallbacks"] == 1 and st["in_use"] == pool.num_segments
        assert st["peak_in_use"] == pool.num_segments

    def test_refcounts_delay_recycling(self, pool):
        slot = pool.acquire(4096)
        pool.add_refs(slot, 2)  # three holders total
        pool.release(slot)
        pool.release(slot)
        assert pool.stats()["in_use"] == 1
        pool.release(slot)
        assert pool.stats()["in_use"] == 0

    def test_carrier_gc_releases_slab(self, pool):
        slot = pool.acquire(4096)
        arr = pool.carrier(slot, 0, 4096)
        view = arr[100:200]  # derived view keeps the carrier alive
        del arr
        gc.collect()
        assert pool.stats()["in_use"] == 1
        del view
        gc.collect()
        assert pool.stats()["in_use"] == 0

    def test_invalid_geometry_rejected(self):
        ctx = mp.get_context("fork")
        with pytest.raises(ValueError):
            shm.ShmPool(ctx, segments=0)
        with pytest.raises(ValueError):
            shm.ShmPool(ctx, segments=1, segment_bytes=512, threshold=1024)

    def test_destroy_is_idempotent_and_unlinks(self):
        ctx = mp.get_context("fork")
        p = shm.ShmPool(ctx, segments=2, segment_bytes=1 << 16, threshold=8)
        assert len(leaked_segments()) == 2
        p.destroy()
        p.destroy()
        assert leaked_segments() == []


class TestFraming:
    def test_large_payload_rides_the_slab(self, pool):
        arr = np.arange(100_000, dtype=np.float64)
        data, wire_n, shm_n = shm.dumps(("s", arr), pool)
        assert shm_n == arr.nbytes
        assert wire_n == len(data) < 1024
        out_stream, out = shm.loads(data, pool)
        assert out_stream == "s"
        np.testing.assert_array_equal(out, arr)

    def test_receive_is_zero_copy(self, pool):
        arr = np.arange(10_000, dtype=np.float64)
        data, _, shm_n = shm.dumps(("s", arr), pool)
        assert shm_n > 0
        with codec.forbid_array_copies():
            _, out = shm.loads(data, pool)
        # The rebuilt array aliases slab memory: writing the slab
        # through the pool must be visible through the array.
        slot = shm._SLOT.unpack_from(memoryview(data), len(data) - 4)[0]
        pool.view(slot, 0, 8)[:] = np.float64(123.0).tobytes()
        assert out[0] == 123.0

    def test_small_payload_stays_inline(self, pool):
        arr = np.arange(8, dtype=np.int64)  # 64 B < 1 KiB threshold
        data, wire_n, shm_n = shm.dumps(("s", arr), pool)
        assert shm_n == 0
        assert pool.stats()["hits"] == 0
        np.testing.assert_array_equal(shm.loads(data, pool)[1], arr)

    def test_no_pool_is_plain_codec(self):
        obj = ("s", np.arange(1000))
        data, wire_n, shm_n = shm.dumps(obj, None)
        assert shm_n == 0 and data == codec.dumps(obj)
        np.testing.assert_array_equal(shm.loads(data, None)[1], obj[1])

    def test_multi_buffer_payload(self, pool):
        a = np.arange(30_000, dtype=np.float64)
        b = np.arange(20_000, dtype=np.int32)
        data, _, shm_n = shm.dumps({"a": a, "b": b}, pool)
        assert shm_n == a.nbytes + b.nbytes
        out = shm.loads(data, pool)
        np.testing.assert_array_equal(out["a"], a)
        np.testing.assert_array_equal(out["b"], b)
        assert pool.stats()["in_use"] == 1  # one slab, two carriers
        del out
        gc.collect()
        assert pool.stats()["in_use"] == 0

    def test_exhausted_pool_falls_back_inline(self, pool):
        held = [pool.acquire(4096) for _ in range(pool.num_segments)]
        arr = np.arange(10_000, dtype=np.float64)
        data, _, shm_n = shm.dumps(("s", arr), pool)
        assert shm_n == 0  # fell back in-band rather than blocking
        np.testing.assert_array_equal(shm.loads(data, pool)[1], arr)
        for slot in held:
            pool.release(slot)

    def test_shm_frame_without_pool_rejected(self, pool):
        data, _, shm_n = shm.dumps(("s", np.arange(10_000)), pool)
        assert shm_n > 0
        with pytest.raises(codec.CodecError):
            shm.loads(data, None)
        with pytest.raises(codec.CodecError):
            codec.loads(data)  # plain decoder must refuse, not misparse


# ---------------------------------------------------------------------------
# Runtime adoption


class ArrayProducer(Filter):
    def __init__(self, count=12, cells=20_000):
        self.count = count
        self.cells = cells

    def generate(self, ctx):
        for i in range(self.count):
            a = np.full(self.cells, float(i))
            ctx.send("out", a, size_bytes=a.nbytes, metadata={"chunk": (i,)})


class SumCollector(Filter):
    def initialize(self, ctx):
        self.sums = []

    def process(self, stream, buffer, ctx):
        self.sums.append(float(buffer.payload.sum()))

    def finalize(self, ctx):
        ctx.deposit("sums", sorted(self.sums))


class Retainer(Filter):
    """Holds every received array past process(): lifetime-safety check."""

    def initialize(self, ctx):
        self.kept = []

    def process(self, stream, buffer, ctx):
        self.kept.append(buffer.payload)

    def finalize(self, ctx):
        # Validate at the very end: if a slab had been recycled while we
        # still held a view, these sums would be corrupted.
        ctx.deposit("sums", sorted(float(a.sum()) for a in self.kept))


def array_graph(consumer=SumCollector, copies=2, count=12, cells=20_000):
    g = FilterGraph()
    g.add_filter("P", lambda: ArrayProducer(count, cells))
    g.add_filter("C", consumer, copies=copies)
    g.connect("P", "out", "C", policy="demand_driven")
    return g


class CrashingConsumer(Filter):
    def process(self, stream, buffer, ctx):
        pass


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        a = buffer.payload * 2.0
        ctx.send("out", a, size_bytes=a.nbytes, metadata=buffer.metadata)


def expected_sums(count=12, cells=20_000):
    return [float(i) * cells for i in range(count)]


class TestRuntimeShm:
    def test_accounting_splits_wire_and_shm(self):
        res = MPRuntime(array_graph(), transport="shm").run(timeout=60)
        assert sorted(sum(res.deposits("sums"), [])) == expected_sums()
        assert res.shm_bytes["P:out"] == 12 * 20_000 * 8
        assert res.wire_bytes["P:out"] < 12 * 4096
        counters = res.metrics["counters"]
        assert counters["shm_pool_hits"] == 12
        assert counters["shm_pool_fallbacks"] == 0
        assert res.metrics["gauges"]["shm_pool_in_use"]["value"] == 0
        assert leaked_segments() == []

    def test_pipe_transport_reports_no_shm_bytes(self):
        res = MPRuntime(array_graph(), transport="pipe").run(timeout=60)
        assert res.shm_bytes == {}
        assert res.wire_bytes["P:out"] > 12 * 20_000 * 8

    def test_retaining_consumer_sees_uncorrupted_data(self):
        # More deliveries than slabs: recycling must wait for the
        # consumer's references, or the retained arrays get overwritten.
        res = MPRuntime(
            array_graph(consumer=Retainer, copies=1, count=16),
            transport="shm", shm_segments=4, shm_segment_bytes=1 << 20,
            shm_threshold=1 << 10,
        ).run(timeout=60)
        assert sum(res.deposits("sums"), []) == expected_sums(16)
        assert leaked_segments() == []

    def test_tiny_pool_falls_back_and_completes(self):
        res = MPRuntime(
            array_graph(), transport="shm",
            shm_segments=1, shm_segment_bytes=1 << 20, shm_threshold=1 << 10,
        ).run(timeout=60)
        assert sorted(sum(res.deposits("sums"), [])) == expected_sums()
        assert leaked_segments() == []

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            MPRuntime(array_graph(), transport="carrier-pigeon")

    def test_bad_poll_interval_rejected(self):
        with pytest.raises(ValueError):
            MPRuntime(array_graph(), poll_interval=-1.0)

    def test_custom_poll_interval_runs(self):
        res = MPRuntime(
            array_graph(), transport="shm", poll_interval=0.005
        ).run(timeout=60)
        assert sorted(sum(res.deposits("sums"), [])) == expected_sums()


class TestCrashCleanup:
    def test_no_leak_after_hard_child_kill(self):
        # The child dies via os._exit: only the parent's exitcode
        # watcher notices, and the pool must still be torn down.
        plan = FaultPlan().crash_copy("C", copy_index=0, after_buffers=0,
                                      hard=True)
        with pytest.raises(PipelineError) as exc:
            MPRuntime(
                array_graph(consumer=CrashingConsumer, copies=1),
                transport="shm", faults=plan, retry=NO_RETRY,
            ).run(timeout=60)
        assert any(f.kind == "exitcode" for f in exc.value.failures)
        assert leaked_segments() == []

    def test_no_leak_after_abort(self):
        plan = FaultPlan().crash_copy("C", copy_index=0, after_buffers=2)
        with pytest.raises(PipelineError):
            MPRuntime(
                array_graph(consumer=CrashingConsumer, copies=1),
                transport="shm", faults=plan, retry=NO_RETRY,
            ).run(timeout=60)
        assert leaked_segments() == []

    def test_no_leak_after_recovered_crash(self):
        # Crash a mid-pipeline copy: its in-flight slab-backed buffer is
        # rerouted to a survivor and every chunk still arrives, doubled.
        g = FilterGraph()
        g.add_filter("P", ArrayProducer)
        g.add_filter("D", Doubler, copies=3)
        g.add_filter("C", SumCollector)
        g.connect("P", "out", "D", policy="demand_driven")
        g.connect("D", "out", "C")
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=2)
        res = MPRuntime(g, transport="shm", faults=plan).run(timeout=60)
        assert sum(res.deposits("sums"), []) == [
            2.0 * s for s in expected_sums()
        ]
        (failure,) = res.failed_copies
        assert failure.recovered
        assert leaked_segments() == []

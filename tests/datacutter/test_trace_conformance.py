"""One trace schema, four execution modes.

Runs the same small analysis across the sequential driver and all three
parallel runtimes with tracing on, and checks that every backend emits
schema-valid events, that the per-chunk lifecycle counts agree, and that
the metrics snapshot reproduces the legacy busy-time breakdown.
"""

import collections
import json
import sys

import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.datacutter.net import DistRuntime
from repro.datacutter.obs import Tracer, lifecycle_counts, validate_events
from repro.datacutter.runtime_local import LocalRuntime
from repro.datacutter.runtime_mp import MPRuntime
from repro.filters.messages import TextureParams
from repro.pipeline.builder import build_graph
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.report import filter_breakdown
from repro.pipeline.sequential import iter_chunk_features
from repro.storage.dataset import DiskDataset4D, write_dataset

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

RUNTIMES = ("threads", "processes", "distributed")

PARAMS = TextureParams(roi_shape=(3, 3, 3, 2), levels=8, features=("asm",))


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(12, 10, 6, 4), seed=0))
    root = str(tmp_path_factory.mktemp("trace_ds") / "data")
    write_dataset(vol, root, num_nodes=2)
    return root


def _config(tmp_path) -> AnalysisConfig:
    return AnalysisConfig(
        texture=PARAMS,
        texture_chunk_shape=(8, 8, 6, 4),
        num_texture_copies=2,
        num_iic_copies=2,
        output="uso",
        output_dir=str(tmp_path / "out"),
    )


def _run_traced(kind, dataset_root, tmp_path):
    cfg = _config(tmp_path)
    graph = build_graph(DiskDataset4D.open(dataset_root), cfg)
    if kind == "threads":
        return LocalRuntime(graph, trace=True).run(timeout=60)
    if kind == "processes":
        return MPRuntime(graph, trace=True).run(timeout=60)
    return DistRuntime(
        graph, hosts=["127.0.0.1"] * 2, trace=True
    ).run(timeout=120)


def _records_written(events):
    return sum(
        ev.attrs["records"] for ev in events if ev.kind == "chunk.write"
    )


@pytest.mark.parametrize("kind", RUNTIMES)
def test_runtime_trace_is_schema_valid(kind, dataset_root, tmp_path):
    run = _run_traced(kind, dataset_root, tmp_path)
    assert run.trace is not None
    assert validate_events(run.trace.events) > 0
    kinds = collections.Counter(e.kind for e in run.trace.events)
    # every backend observes the full lifecycle plus runtime spans
    for expected in (
        "copy.start", "copy.done", "chunk.read", "chunk.stitch",
        "chunk.cooccur", "chunk.features", "chunk.write",
        "queue.wait", "service", "queue.depth", "sched.pick",
    ):
        assert kinds[expected] > 0, (kind, expected, kinds)
    # copy lifecycle brackets every hosted copy exactly once
    n_copies = sum(spec.copies for spec in
                   _graph_specs(dataset_root, tmp_path))
    assert kinds["copy.start"] == n_copies
    assert kinds["copy.done"] == n_copies


def _graph_specs(dataset_root, tmp_path):
    graph = build_graph(
        DiskDataset4D.open(dataset_root), _config(tmp_path)
    )
    return graph.filters.values()


def test_all_modes_agree_on_chunk_lifecycle(dataset_root, tmp_path):
    """Same workload, same chunks visited the same number of times."""
    per_mode = {}

    cfg = _config(tmp_path)
    tracer = Tracer()
    seq_cfg = AnalysisConfig(
        texture=cfg.texture, texture_chunk_shape=cfg.texture_chunk_shape
    )
    for _chunk, _local in iter_chunk_features(
        DiskDataset4D.open(dataset_root), seq_cfg, tracer=tracer
    ):
        pass
    per_mode["sequential"] = tracer.drain()

    for kind in RUNTIMES:
        run = _run_traced(kind, dataset_root, tmp_path / kind)
        per_mode[kind] = run.trace.events

    # RFR reads per slice while the sequential driver reads whole
    # chunks, and record counts differ with the output stage — so the
    # conformance surface is the per-chunk stitch/cooccur/features
    # counts, which every mode must agree on exactly.
    reference = None
    for mode, events in per_mode.items():
        counts = lifecycle_counts(events)
        subset = {
            k: counts[k] for k in ("chunk.stitch", "chunk.cooccur",
                                   "chunk.features")
        }
        if reference is None:
            reference = subset
        else:
            assert subset == reference, mode

    # the three parallel runtimes also write identical record totals
    totals = {
        kind: _records_written(per_mode[kind]) for kind in RUNTIMES
    }
    assert len(set(totals.values())) == 1, totals
    assert next(iter(totals.values())) > 0


@pytest.mark.parametrize("kind", ("threads", "distributed"))
def test_chrome_trace_has_per_chunk_pipeline_spans(kind, dataset_root,
                                                   tmp_path):
    """The exported Chrome trace shows RFR→IIC→HMP→USO per chunk."""
    run = _run_traced(kind, dataset_root, tmp_path)
    path = str(tmp_path / "trace.json")
    run.trace.to_chrome(path)
    doc = json.load(open(path))
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
    procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert {"RFR", "IIC", "HMP", "USO"} <= procs
    chunk_tag = "0/0/0/0"
    stages = {s["name"].split(" ")[0] for s in spans if chunk_tag in s["name"]}
    assert {"chunk.stitch", "chunk.cooccur", "chunk.features",
            "chunk.write"} <= stages
    assert all(s["dur"] > 0 and s["ts"] >= 0 for s in spans)


@pytest.mark.parametrize("kind", RUNTIMES)
def test_breakdown_from_metrics_matches_busy_time(kind, dataset_root,
                                                  tmp_path):
    """filter_breakdown (metrics-based) stays within 1% of busy_time."""
    run = _run_traced(kind, dataset_root, tmp_path)
    stats = filter_breakdown(run)
    legacy = {}
    for (name, _copy), busy in run.busy_time.items():
        legacy.setdefault(name, []).append(busy)
    assert set(stats) == set(legacy)
    for name, times in legacy.items():
        s = stats[name]
        assert s["copies"] == len(times)
        for key, want in (
            ("total", sum(times)),
            ("mean", sum(times) / len(times)),
            ("max", max(times)),
        ):
            assert abs(s[key] - want) <= 0.01 * max(abs(want), 1e-12), (
                kind, name, key, s[key], want,
            )


@pytest.mark.parametrize("kind", RUNTIMES)
def test_disabled_tracing_still_snapshots_metrics(kind, dataset_root,
                                                  tmp_path):
    cfg = _config(tmp_path)
    graph = build_graph(DiskDataset4D.open(dataset_root), cfg)
    if kind == "threads":
        run = LocalRuntime(graph).run(timeout=60)
    elif kind == "processes":
        run = MPRuntime(graph).run(timeout=60)
    else:
        run = DistRuntime(graph, hosts=["127.0.0.1"] * 2).run(timeout=120)
    assert run.trace is None
    assert "busy_seconds{filter=HMP}" in run.metrics["histograms"]
    assert run.metrics["gauges"]["elapsed_seconds"]["value"] > 0

"""Event-driven wakeups: latency, lost-wakeup safety, fault parity.

The runtimes used to tick: every blocking wait was a fixed-interval
polling loop, so each queue hand-off paid up to ``poll_interval`` of
idle latency.  The event-driven path replaces the ticks with real
wakeups (``multiprocessing.Event`` on queue transitions, ``selectors``
readiness in the net agent) and keeps the poll interval only as a
watchdog.  These tests pin the two properties that matter:

* **No lost wakeups.**  With a deliberately huge watchdog interval, any
  empty->non-empty queue transition a consumer misses would stall the
  run for seconds.  The runs must complete at event speed.
* **Fault detection no worse than polled.**  Crash detection (exitcode
  watcher, heartbeats) must not regress when waits become event-driven
  — the same FaultPlan recovers at least as fast as under polling.

Filter classes live at module level so forked children can run them.
"""

import time

import pytest

from repro.datacutter.faults import FaultPlan, PipelineError
from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_local import LocalRuntime
from repro.datacutter.runtime_mp import MPRuntime

# A watchdog so large that any missed wakeup turns into a visible stall:
# a run that completes well under HUGE_POLL proves no wait ever expired.
HUGE_POLL = 5.0
FAST = HUGE_POLL * 0.8


class Producer(Filter):
    def __init__(self, count=40, pause=0.0):
        self.count = count
        self.pause = pause

    def generate(self, ctx):
        for i in range(self.count):
            if self.pause:
                time.sleep(self.pause)
            ctx.send("out", i, size_bytes=8)


class Doubler(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send("out", buffer.payload * 2, size_bytes=8)


class Collector(Filter):
    def __init__(self):
        self.items = []

    def process(self, stream, buffer, ctx):
        self.items.append(buffer.payload)

    def finalize(self, ctx):
        ctx.deposit("collected", sorted(self.items))


def pipeline(count=40, copies=3, pause=0.0):
    g = FilterGraph()
    g.add_filter("P", lambda: Producer(count, pause))
    g.add_filter("D", Doubler, copies=copies)
    g.add_filter("C", Collector)
    g.connect("P", "out", "D")
    g.connect("D", "out", "C")
    return g


def expected(count=40):
    return sorted(i * 2 for i in range(count))


class TestNoLostWakeup:
    """A missed 0->1 queue transition would stall for HUGE_POLL seconds."""

    def test_mp_completes_at_event_speed(self):
        rt = MPRuntime(pipeline(), wakeup="event", poll_interval=HUGE_POLL)
        t0 = time.perf_counter()
        res = rt.run(timeout=60)
        elapsed = time.perf_counter() - t0
        assert res.deposits("collected")[0] == expected()
        assert elapsed < FAST, f"stalled {elapsed:.2f}s: a wakeup was lost"

    def test_local_completes_at_event_speed(self):
        rt = LocalRuntime(pipeline(), wakeup="event", poll_interval=HUGE_POLL)
        t0 = time.perf_counter()
        res = rt.run(timeout=60)
        elapsed = time.perf_counter() - t0
        assert res.deposits("collected")[0] == expected()
        assert elapsed < FAST, f"stalled {elapsed:.2f}s: a wakeup was lost"

    def test_mp_slow_producer_each_send_is_a_transition(self):
        # A pause between sends makes every send an empty->non-empty
        # transition hitting an already-idle consumer: the worst case
        # for wakeup races.  20 x 0.01s of production must not grow by
        # even one watchdog period.
        rt = MPRuntime(
            pipeline(count=20, pause=0.01),
            wakeup="event",
            poll_interval=HUGE_POLL,
        )
        t0 = time.perf_counter()
        res = rt.run(timeout=60)
        elapsed = time.perf_counter() - t0
        assert res.deposits("collected")[0] == expected(20)
        assert elapsed < FAST, f"stalled {elapsed:.2f}s: a wakeup was lost"

    def test_local_slow_producer_each_send_is_a_transition(self):
        rt = LocalRuntime(
            pipeline(count=20, pause=0.01),
            wakeup="event",
            poll_interval=HUGE_POLL,
        )
        t0 = time.perf_counter()
        res = rt.run(timeout=60)
        elapsed = time.perf_counter() - t0
        assert res.deposits("collected")[0] == expected(20)
        assert elapsed < FAST, f"stalled {elapsed:.2f}s: a wakeup was lost"

    @pytest.mark.parametrize("runtime_cls", [MPRuntime, LocalRuntime])
    def test_wakeup_mode_validated(self, runtime_cls):
        with pytest.raises(ValueError):
            runtime_cls(pipeline(), wakeup="psychic")


class TestFaultDetectionParity:
    """Event-driven waits must not slow down crash detection/recovery."""

    def _recover(self, wakeup):
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=3)
        rt = MPRuntime(pipeline(), wakeup=wakeup, faults=plan)
        t0 = time.perf_counter()
        res = rt.run(timeout=60)
        elapsed = time.perf_counter() - t0
        assert res.deposits("collected")[0] == expected()
        return elapsed

    def _detect_hard_kill(self, wakeup, **kwargs):
        # Silent death (os._exit) is fatal by design; what matters is
        # how fast the parent's exitcode watcher notices and aborts.
        plan = FaultPlan().crash_copy("D", copy_index=0, after_buffers=0,
                                      hard=True)
        rt = MPRuntime(pipeline(copies=2), wakeup=wakeup, faults=plan,
                       **kwargs)
        t0 = time.perf_counter()
        with pytest.raises(PipelineError) as exc:
            rt.run(timeout=60)
        elapsed = time.perf_counter() - t0
        assert any(f.kind == "exitcode" for f in exc.value.failures)
        return elapsed

    def test_graceful_crash_recovery_no_worse_than_polled(self):
        event = self._recover("event")
        polled = self._recover("polled")
        # Generous scheduling slack; the property is "no regression",
        # not a precise latency bound (bench_tuning.py measures that).
        assert event <= polled + 2.0, (event, polled)

    def test_hard_kill_detection_no_worse_than_polled(self):
        event = self._detect_hard_kill("event")
        polled = self._detect_hard_kill("polled")
        assert event <= polled + 2.0, (event, polled)

    def test_hard_kill_detected_under_huge_watchdog(self):
        # Detection must ride the dead child's sentinel becoming ready
        # in connection.wait, not the watchdog tick: with a 5s watchdog
        # the abort may cost the exit-grace window but never a watchdog
        # period on top.
        elapsed = self._detect_hard_kill("event", poll_interval=HUGE_POLL)
        assert elapsed < FAST, (
            f"detection waited for the watchdog ({elapsed:.2f}s)"
        )


class TestPolledModeStillWorks:
    """The legacy mode stays available for benchmarking the delta."""

    def test_mp_polled(self):
        res = MPRuntime(pipeline(), wakeup="polled").run(timeout=60)
        assert res.deposits("collected")[0] == expected()

    def test_local_polled(self):
        res = LocalRuntime(pipeline(), wakeup="polled").run(timeout=60)
        assert res.deposits("collected")[0] == expected()

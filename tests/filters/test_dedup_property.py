"""Property tests: stitching filters are idempotent under re-delivery.

Fault recovery gives the streams at-least-once semantics — after a copy
dies, its queued buffers are re-delivered to survivors, and a buffer the
dead copy had already processed may arrive a second time.  The stitching
filters (IIC, HIC) and USO therefore dedup by position.  Hypothesis
drives arbitrary duplication + reordering of the delivery schedule and
checks the result is bit-identical to the clean, in-order run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunks.chunking import partition
from repro.core.quantization import quantize_linear
from repro.core.raster import raster_scan
from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.datacutter.buffers import DataBuffer
from repro.filters.hic import HaralickImageConstructor
from repro.filters.hmp import HaralickMatrixProducer
from repro.filters.iic import InputImageConstructor
from repro.filters.messages import SlicePortion, TextureParams
from repro.filters.uso import UnstitchedOutput, combine_uso_outputs

from ..filters.test_filters_unit import FakeContext

PARAMS = TextureParams(
    roi_shape=(3, 3, 3, 2),
    levels=8,
    features=("asm", "idm"),
    intensity_range=(0.0, 4095.0),
)
SHAPE = (12, 10, 6, 4)

VOLUME = generate_phantom(PhantomConfig(shape=SHAPE, seed=2))
CHUNK = partition(SHAPE, PARAMS.roi, SHAPE)[0]


def slice_portions():
    return [
        SlicePortion(
            t=t, z=z, x0=0, x1=12, y0=0, y1=10, data=VOLUME.get_slice(t, z)
        )
        for t in range(SHAPE[3])
        for z in range(SHAPE[2])
    ]


def feature_portions():
    hmp = HaralickMatrixProducer(PARAMS)
    ctx = FakeContext()
    from repro.filters.messages import TextureChunk

    hmp.process("iic2tex", DataBuffer(TextureChunk(CHUNK, VOLUME.data)), ctx)
    return [s["payload"] for s in ctx.sent]


FEATURE_PORTIONS = feature_portions()


@st.composite
def at_least_once_schedule(draw, n):
    """Indices 0..n-1, each appearing >= 1 time, arbitrarily reordered."""
    base = list(range(n))
    extra = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    return draw(st.permutations(base + extra))


def expected_features():
    q = quantize_linear(VOLUME.data, 8, lo=0.0, hi=4095.0)
    return raster_scan(q, PARAMS.roi, 8, features=PARAMS.features)


class TestIICDedupProperty:
    @settings(max_examples=25, deadline=None)
    @given(at_least_once_schedule(SHAPE[2] * SHAPE[3]))
    def test_duplicated_reordered_planes_stitch_identically(self, schedule):
        portions = slice_portions()
        iic = InputImageConstructor([CHUNK])
        ctx = FakeContext()
        iic.initialize(ctx)
        for i in schedule:
            iic.process("rfr2iic", DataBuffer(portions[i]), ctx)
        iic.finalize(ctx)
        assert len(ctx.sent) == 1  # duplicates never re-emit the chunk
        assert np.array_equal(ctx.sent[0]["payload"].data, VOLUME.data)


class TestHICDedupProperty:
    @settings(max_examples=25, deadline=None)
    @given(at_least_once_schedule(len(FEATURE_PORTIONS)))
    def test_duplicated_reordered_portions_stitch_identically(self, schedule):
        hic = HaralickImageConstructor(
            SHAPE, PARAMS.roi_shape, PARAMS.features, out_stream=None
        )
        ctx = FakeContext()
        for i in schedule:
            hic.process("tex2out", DataBuffer(FEATURE_PORTIONS[i]), ctx)
        hic.finalize(ctx)
        ((_, volumes),) = ctx.deposited
        want = expected_features()
        for name in PARAMS.features:
            np.testing.assert_array_equal(volumes[name], want[name])


class TestUSODedup:
    def test_duplicate_portion_written_once(self, tmp_path):
        uso = UnstitchedOutput(str(tmp_path), PARAMS.roi_shape)
        ctx = FakeContext()
        uso.initialize(ctx)
        for fp in FEATURE_PORTIONS:
            uso.process("tex2out", DataBuffer(fp), ctx)
        # Re-deliver every portion: records must not duplicate (the
        # combiner rejects duplicate positions, so this would blow up).
        for fp in FEATURE_PORTIONS:
            uso.process("tex2out", DataBuffer(fp), ctx)
        uso.finalize(ctx)
        files = {v["feature"]: v["path"] for k, v in ctx.deposited if k == "uso_files"}
        out_shape = tuple(s - r + 1 for s, r in zip(SHAPE, PARAMS.roi_shape))
        rebuilt = combine_uso_outputs([files["asm"]], out_shape)
        np.testing.assert_allclose(rebuilt, expected_features()["asm"])


if __name__ == "__main__":
    pytest.main([__file__, "-q"])

"""Unit tests for individual application filters (outside any runtime)."""

import os
from typing import Any, Dict, List, Optional

import numpy as np
import pytest

from repro.chunks.chunking import partition
from repro.core.quantization import quantize_linear
from repro.core.raster import raster_scan
from repro.core.roi import ROISpec
from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.datacutter.buffers import DataBuffer
from repro.datacutter.filter import FilterContext
from repro.filters.hcc import HaralickCoMatrixCalculator
from repro.filters.hic import HaralickImageConstructor
from repro.filters.hmp import HaralickMatrixProducer
from repro.filters.hpc import HaralickParameterCalculator
from repro.filters.iic import InputImageConstructor
from repro.filters.jiw import JPGImageWriter, normalize_volume
from repro.filters.messages import (
    FeaturePortion,
    ParameterVolume,
    SlicePortion,
    TextureChunk,
    TextureParams,
)
from repro.filters.rfr import RawFileReader, inplane_blocks
from repro.filters.uso import UnstitchedOutput, combine_uso_outputs, read_uso_records
from repro.storage.dataset import write_dataset


class FakeContext(FilterContext):
    """Captures sends/deposits for single-filter unit tests."""

    def __init__(self, copy_index=0, num_copies=1):
        super().__init__("test", copy_index, num_copies)
        self.sent: List[Dict[str, Any]] = []
        self.deposited: List = []

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        self.sent.append(
            dict(
                stream=stream,
                payload=payload,
                size_bytes=size_bytes,
                metadata=metadata or {},
                dest_copy=dest_copy,
            )
        )

    def deposit(self, key, value):
        self.deposited.append((key, value))


PARAMS = TextureParams(
    roi_shape=(3, 3, 3, 2),
    levels=8,
    features=("asm", "idm"),
    intensity_range=(0.0, 4095.0),
)
SHAPE = (12, 10, 6, 4)


@pytest.fixture(scope="module")
def volume():
    return generate_phantom(PhantomConfig(shape=SHAPE, seed=2))


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory, volume):
    root = str(tmp_path_factory.mktemp("filters_ds") / "data")
    write_dataset(volume, root, num_nodes=2)
    return root


def the_chunk():
    return partition(SHAPE, PARAMS.roi, SHAPE)[0]


class TestInplaneBlocks:
    def test_whole_slice_default(self):
        assert inplane_blocks((10, 8), None) == [(0, 10, 0, 8)]

    def test_tiling(self):
        blocks = inplane_blocks((10, 8), (6, 5))
        assert (0, 6, 0, 5) in blocks
        assert (6, 10, 5, 8) in blocks
        covered = np.zeros((10, 8), dtype=int)
        for x0, x1, y0, y1 in blocks:
            covered[x0:x1, y0:y1] += 1
        assert np.all(covered == 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            inplane_blocks((10, 8), (0, 4))


class TestRFR:
    def test_reads_only_local_slices(self, dataset_root, volume):
        chunks = [the_chunk()]
        rfr = RawFileReader(dataset_root, chunks, num_iic_copies=1, node=0)
        ctx = FakeContext()
        rfr.initialize(ctx)
        rfr.generate(ctx)
        sent_keys = {(s["payload"].t, s["payload"].z) for s in ctx.sent}
        from repro.storage.distribution import slices_for_node

        assert sent_keys == set(slices_for_node(0, 4, 6, 2))
        for s in ctx.sent:
            p = s["payload"]
            assert np.array_equal(p.data, volume.get_slice(p.t, p.z))
            assert s["dest_copy"] == 0

    def test_node_from_copy_index(self, dataset_root):
        rfr = RawFileReader(dataset_root, [the_chunk()], num_iic_copies=1)
        ctx = FakeContext(copy_index=1, num_copies=2)
        rfr.initialize(ctx)
        assert rfr.node == 1

    def test_bad_node_rejected(self, dataset_root):
        rfr = RawFileReader(dataset_root, [the_chunk()], num_iic_copies=1, node=9)
        with pytest.raises(ValueError):
            rfr.initialize(FakeContext())

    def test_destinations_deduplicated(self, dataset_root):
        # Two chunks assigned to the same IIC copy -> one send per slice.
        chunks = partition(SHAPE, PARAMS.roi, (7, 10, 6, 4))
        assert len(chunks) == 2
        rfr = RawFileReader(dataset_root, chunks, num_iic_copies=1, node=0)
        ctx = FakeContext()
        rfr.initialize(ctx)
        rfr.generate(ctx)
        keys = [(s["payload"].t, s["payload"].z) for s in ctx.sent]
        assert len(keys) == len(set(keys))


class TestIIC:
    def test_assembles_and_emits(self, volume):
        chunk = the_chunk()
        iic = InputImageConstructor([chunk])
        ctx = FakeContext()
        iic.initialize(ctx)
        for t in range(4):
            for z in range(6):
                portion = SlicePortion(
                    t=t, z=z, x0=0, x1=12, y0=0, y1=10, data=volume.get_slice(t, z)
                )
                iic.process("rfr2iic", DataBuffer(portion), ctx)
        assert len(ctx.sent) == 1
        tc = ctx.sent[0]["payload"]
        assert isinstance(tc, TextureChunk)
        assert np.array_equal(tc.data, volume.data)
        iic.finalize(ctx)  # complete -> no error

    def test_partial_inplane_portions(self, volume):
        chunk = the_chunk()
        iic = InputImageConstructor([chunk])
        ctx = FakeContext()
        iic.initialize(ctx)
        for t in range(4):
            for z in range(6):
                img = volume.get_slice(t, z)
                # Deliver each plane as two half-slices.
                for (x0, x1) in ((0, 7), (7, 12)):
                    portion = SlicePortion(
                        t=t, z=z, x0=x0, x1=x1, y0=0, y1=10, data=img[x0:x1]
                    )
                    iic.process("rfr2iic", DataBuffer(portion), ctx)
        assert len(ctx.sent) == 1
        assert np.array_equal(ctx.sent[0]["payload"].data, volume.data)

    def test_incomplete_finalize_raises(self, volume):
        iic = InputImageConstructor([the_chunk()])
        ctx = FakeContext()
        iic.initialize(ctx)
        portion = SlicePortion(
            t=0, z=0, x0=0, x1=12, y0=0, y1=10, data=volume.get_slice(0, 0)
        )
        iic.process("rfr2iic", DataBuffer(portion), ctx)
        with pytest.raises(RuntimeError):
            iic.finalize(ctx)

    def test_wrong_payload_type(self):
        iic = InputImageConstructor([the_chunk()])
        ctx = FakeContext()
        iic.initialize(ctx)
        with pytest.raises(TypeError):
            iic.process("rfr2iic", DataBuffer("nonsense"), ctx)

    def test_copy_only_handles_assigned_chunks(self, volume):
        chunks = partition(SHAPE, PARAMS.roi, (7, 10, 6, 4))
        iic = InputImageConstructor(chunks)
        ctx = FakeContext(copy_index=0, num_copies=2)
        iic.initialize(ctx)  # copy 0 owns chunk 0 only
        for t in range(4):
            for z in range(6):
                portion = SlicePortion(
                    t=t, z=z, x0=0, x1=12, y0=0, y1=10, data=volume.get_slice(t, z)
                )
                iic.process("rfr2iic", DataBuffer(portion), ctx)
        assert len(ctx.sent) == 1
        assert ctx.sent[0]["payload"].chunk.index == chunks[0].index
        iic.finalize(ctx)


class TestTextureFilters:
    def expected(self, volume):
        q = quantize_linear(volume.data, 8, lo=0.0, hi=4095.0)
        return raster_scan(q, PARAMS.roi, 8, features=PARAMS.features)

    def run_hmp(self, volume, params):
        hmp = HaralickMatrixProducer(params)
        ctx = FakeContext()
        hmp.process(
            "iic2tex", DataBuffer(TextureChunk(the_chunk(), volume.data)), ctx
        )
        return ctx.sent

    def test_hmp_produces_correct_features(self, volume):
        sent = self.run_hmp(volume, PARAMS)
        want = self.expected(volume)
        got = np.zeros(want["asm"].size)
        for s in sent:
            fp = s["payload"]
            got[fp.start : fp.start + fp.count] = fp.values["asm"]
        np.testing.assert_allclose(got.reshape(want["asm"].shape), want["asm"])

    def test_hmp_sparse_path_matches(self, volume):
        import dataclasses

        sparse_params = dataclasses.replace(PARAMS, sparse=True)
        a = self.run_hmp(volume, PARAMS)
        b = self.run_hmp(volume, sparse_params)
        for sa, sb in zip(a, b):
            np.testing.assert_allclose(
                sa["payload"].values["asm"], sb["payload"].values["asm"], atol=1e-10
            )

    def test_hmp_packets_are_eighths(self, volume):
        sent = self.run_hmp(volume, PARAMS)
        assert 8 <= len(sent) <= 9
        total = sum(s["payload"].count for s in sent)
        grid = np.prod([s - r + 1 for s, r in zip(SHAPE, PARAMS.roi_shape)])
        assert total == grid

    def test_hcc_hpc_equals_hmp(self, volume):
        hcc = HaralickCoMatrixCalculator(PARAMS)
        ctx1 = FakeContext()
        hcc.process("iic2tex", DataBuffer(TextureChunk(the_chunk(), volume.data)), ctx1)
        hpc = HaralickParameterCalculator(PARAMS)
        ctx2 = FakeContext()
        for s in ctx1.sent:
            hpc.process("hcc2hpc", DataBuffer(s["payload"]), ctx2)
        hmp_sent = self.run_hmp(volume, PARAMS)
        for shpc, shmp in zip(ctx2.sent, hmp_sent):
            np.testing.assert_allclose(
                shpc["payload"].values["idm"], shmp["payload"].values["idm"]
            )

    def test_hcc_sparse_shrinks_wire_size(self, volume):
        import dataclasses

        ctxs = {}
        for sparse in (False, True):
            params = dataclasses.replace(PARAMS, sparse=sparse)
            hcc = HaralickCoMatrixCalculator(params)
            ctx = FakeContext()
            hcc.process(
                "iic2tex", DataBuffer(TextureChunk(the_chunk(), volume.data)), ctx
            )
            ctxs[sparse] = sum(s["size_bytes"] for s in ctx.sent)
        assert ctxs[True] < 0.35 * ctxs[False]

    def test_wrong_payloads(self, volume):
        with pytest.raises(TypeError):
            HaralickMatrixProducer(PARAMS).process("s", DataBuffer(1), FakeContext())
        with pytest.raises(TypeError):
            HaralickCoMatrixCalculator(PARAMS).process("s", DataBuffer(1), FakeContext())
        with pytest.raises(TypeError):
            HaralickParameterCalculator(PARAMS).process("s", DataBuffer(1), FakeContext())


class TestOutputFilters:
    def portions(self, volume):
        hmp = HaralickMatrixProducer(PARAMS)
        ctx = FakeContext()
        hmp.process("iic2tex", DataBuffer(TextureChunk(the_chunk(), volume.data)), ctx)
        return [s["payload"] for s in ctx.sent]

    def test_uso_round_trip(self, volume, tmp_path):
        uso = UnstitchedOutput(str(tmp_path), PARAMS.roi_shape)
        ctx = FakeContext()
        uso.initialize(ctx)
        for fp in self.portions(volume):
            uso.process("tex2out", DataBuffer(fp), ctx)
        uso.finalize(ctx)
        files = {v["feature"]: v["path"] for k, v in ctx.deposited if k == "uso_files"}
        assert set(files) == {"asm", "idm"}
        out_shape = tuple(s - r + 1 for s, r in zip(SHAPE, PARAMS.roi_shape))
        rebuilt = combine_uso_outputs([files["asm"]], out_shape)
        q = quantize_linear(volume.data, 8, lo=0.0, hi=4095.0)
        want = raster_scan(q, PARAMS.roi, 8, features=("asm",))["asm"]
        np.testing.assert_allclose(rebuilt, want)

    def test_uso_record_format(self, volume, tmp_path):
        uso = UnstitchedOutput(str(tmp_path), PARAMS.roi_shape)
        ctx = FakeContext()
        uso.initialize(ctx)
        fps = self.portions(volume)
        uso.process("tex2out", DataBuffer(fps[0]), ctx)
        uso.finalize(ctx)
        path = next(v["path"] for k, v in ctx.deposited if v["feature"] == "asm")
        coords, vals = read_uso_records(path, ndim=4)
        assert coords.shape[1] == 4
        assert coords.shape[0] == vals.shape[0] == fps[0].count

    def test_combine_detects_missing(self, tmp_path):
        path = str(tmp_path / "x.uso")
        rec = np.zeros(1, dtype=[("pos", "<u4", (2,)), ("val", "<f8")])
        with open(path, "wb") as fh:
            fh.write(rec.tobytes())
        with pytest.raises(ValueError):
            combine_uso_outputs([path], (4, 4))

    def test_combine_detects_duplicates(self, tmp_path):
        path = str(tmp_path / "x.uso")
        rec = np.zeros(2, dtype=[("pos", "<u4", (2,)), ("val", "<f8")])
        with open(path, "wb") as fh:
            fh.write(rec.tobytes())
        with pytest.raises(ValueError):
            combine_uso_outputs([path, path], (1, 1))

    def test_hic_stitches_and_deposits(self, volume):
        hic = HaralickImageConstructor(
            SHAPE, PARAMS.roi_shape, PARAMS.features, out_stream=None
        )
        ctx = FakeContext()
        for fp in self.portions(volume):
            hic.process("tex2out", DataBuffer(fp), ctx)
        hic.finalize(ctx)
        (key, volumes), = ctx.deposited
        assert key == "volumes"
        q = quantize_linear(volume.data, 8, lo=0.0, hi=4095.0)
        want = raster_scan(q, PARAMS.roi, 8, features=PARAMS.features)
        np.testing.assert_allclose(volumes["idm"], want["idm"])

    def test_hic_incomplete_raises(self, volume):
        hic = HaralickImageConstructor(
            SHAPE, PARAMS.roi_shape, PARAMS.features, out_stream=None
        )
        ctx = FakeContext()
        hic.process("tex2out", DataBuffer(self.portions(volume)[0]), ctx)
        with pytest.raises(RuntimeError):
            hic.finalize(ctx)

    def test_hic_forwards_parameter_volumes(self, volume):
        hic = HaralickImageConstructor(
            SHAPE, PARAMS.roi_shape, PARAMS.features, out_stream="hic2jiw"
        )
        ctx = FakeContext()
        for fp in self.portions(volume):
            hic.process("tex2out", DataBuffer(fp), ctx)
        hic.finalize(ctx)
        assert len(ctx.sent) == 2  # one ParameterVolume per feature
        pv = ctx.sent[0]["payload"]
        assert isinstance(pv, ParameterVolume)
        assert pv.vmin <= pv.vmax


class TestJIW:
    def test_normalize_volume(self):
        vol = np.array([[1.0, 3.0], [2.0, 5.0]])
        norm = normalize_volume(vol, 1.0, 5.0)
        assert norm.min() == 0.0 and norm.max() == 1.0

    def test_normalize_constant(self):
        assert np.all(normalize_volume(np.full((2, 2), 3.0), 3.0, 3.0) == 0.0)

    def test_normalize_invalid(self):
        with pytest.raises(ValueError):
            normalize_volume(np.zeros((2, 2)), 1.0, 0.0)

    def test_writes_image_series(self, tmp_path):
        jiw = JPGImageWriter(str(tmp_path))
        ctx = FakeContext()
        jiw.initialize(ctx)
        vol = np.random.default_rng(0).random((6, 5, 3, 2))
        pv = ParameterVolume("asm", vol, float(vol.min()), float(vol.max()))
        jiw.process("hic2jiw", DataBuffer(pv), ctx)
        (key, info), = ctx.deposited
        assert info["count"] == 6
        from repro.data.formats import read_pgm

        img = read_pgm(os.path.join(str(tmp_path), "asm", "t0001_z0002.pgm"))
        assert img.shape == (6, 5)

    def test_requires_4d(self, tmp_path):
        jiw = JPGImageWriter(str(tmp_path))
        ctx = FakeContext()
        jiw.initialize(ctx)
        with pytest.raises(ValueError):
            jiw.process(
                "s", DataBuffer(ParameterVolume("x", np.zeros((2, 2)), 0, 1)), ctx
            )

"""Unit tests for filter payload types and TextureParams."""

import numpy as np
import pytest

from repro.chunks.chunking import partition
from repro.core.roi import ROISpec
from repro.core.sparse import SparseCooc
from repro.filters.messages import (
    FeaturePortion,
    MatrixPacket,
    ParameterVolume,
    SlicePortion,
    TextureChunk,
    TextureParams,
    iic_copy_for_chunk,
)


def chunk():
    return partition((20, 20, 8, 4), ROISpec((3, 3, 3, 2)), (20, 20, 8, 4))[0]


class TestTextureParams:
    def test_paper_defaults(self):
        p = TextureParams()
        assert p.roi_shape == (5, 5, 5, 3)
        assert p.levels == 32
        assert p.packet_fraction == pytest.approx(1 / 8)
        assert not p.sparse

    def test_packet_rois_eighth(self):
        p = TextureParams(roi_shape=(3, 3, 3, 2))
        c = chunk()
        assert p.packet_rois(c) == int(np.ceil(c.num_rois / 8))

    def test_quantize_uses_fixed_range(self):
        p = TextureParams(levels=4, intensity_range=(0.0, 100.0))
        q = p.quantize(np.array([0.0, 30.0, 99.9]))
        assert list(q) == [0, 1, 3]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(features=()),
            dict(features=("bogus",)),
            dict(packet_fraction=0),
            dict(packet_fraction=1.5),
            dict(intensity_range=(5.0, 5.0)),
            dict(roi_shape=(0, 3)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            TextureParams(**kwargs)


class TestPayloads:
    def test_slice_portion_shape_check(self):
        with pytest.raises(ValueError):
            SlicePortion(t=0, z=0, x0=0, x1=4, y0=0, y1=4, data=np.zeros((3, 4)))

    def test_slice_portion_nbytes(self):
        p = SlicePortion(0, 0, 0, 4, 0, 5, np.zeros((4, 5), dtype=np.uint16))
        assert p.nbytes == 40

    def test_texture_chunk_nbytes(self):
        c = chunk()
        tc = TextureChunk(chunk=c, data=np.zeros(c.shape, dtype=np.uint16))
        assert tc.nbytes == c.num_voxels * 2

    def test_matrix_packet_exactly_one_form(self):
        c = chunk()
        with pytest.raises(ValueError):
            MatrixPacket(chunk=c, start=0)
        with pytest.raises(ValueError):
            MatrixPacket(
                chunk=c,
                start=0,
                dense=np.zeros((1, 4, 4)),
                sparse=[SparseCooc(4, np.array([0]), np.array([0]), np.array([1]))],
            )

    def test_matrix_packet_wire_bytes(self):
        c = chunk()
        dense = MatrixPacket(chunk=c, start=0, dense=np.zeros((3, 32, 32)))
        assert dense.count == 3
        assert dense.wire_bytes(32) == 3 * 32 * 32 * 2
        sp = SparseCooc(32, np.array([1, 2]), np.array([1, 3]), np.array([4, 2]))
        sparse = MatrixPacket(chunk=c, start=0, sparse=[sp, sp])
        assert sparse.count == 2
        assert sparse.wire_bytes(32) == 2 * sp.wire_bytes()
        assert sparse.wire_bytes(32) < dense.wire_bytes(32) / 50

    def test_feature_portion_consistency(self):
        c = chunk()
        with pytest.raises(ValueError):
            FeaturePortion(
                chunk=c, start=0, values={"a": np.zeros(3), "b": np.zeros(4)}
            )
        fp = FeaturePortion(chunk=c, start=5, values={"a": np.zeros(3)})
        assert fp.count == 3
        assert fp.nbytes == 3 * 8

    def test_parameter_volume(self):
        pv = ParameterVolume("asm", np.zeros((4, 4, 2, 2)), 0.0, 1.0)
        assert pv.nbytes == 4 * 4 * 2 * 2 * 8


class TestIICAssignment:
    def test_round_robin(self):
        assert [iic_copy_for_chunk(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_single_copy(self):
        assert iic_copy_for_chunk(7, 1) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            iic_copy_for_chunk(0, 0)

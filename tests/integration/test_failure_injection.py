"""Failure injection: corrupted or missing data must fail loudly.

An out-of-core pipeline that silently zero-fills a corrupt slice would
poison diagnoses; every injected fault here must surface as a clear
exception from the corresponding layer or from the running pipeline.
"""

import os

import numpy as np
import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import DiskDataset4D, node_dir_name, write_dataset


@pytest.fixture
def dataset_root(tmp_path):
    vol = generate_phantom(PhantomConfig(shape=(12, 10, 6, 4), seed=0))
    root = str(tmp_path / "ds")
    write_dataset(vol, root, num_nodes=2)
    return root


def config():
    return AnalysisConfig(
        texture=TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm",),
            intensity_range=(0.0, 65535.0),
        ),
        texture_chunk_shape=(8, 8, 6, 4),
    )


def _slice_file(root, node=0, index=0):
    d = os.path.join(root, node_dir_name(node))
    raws = sorted(f for f in os.listdir(d) if f.endswith(".raw"))
    return os.path.join(d, raws[index])


class TestStorageFaults:
    def test_truncated_slice_detected(self, dataset_root):
        path = _slice_file(dataset_root)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-8])
        ds = DiskDataset4D.open(dataset_root)
        with pytest.raises(ValueError, match="size"):
            ds.read_all()

    def test_oversized_slice_detected(self, dataset_root):
        path = _slice_file(dataset_root)
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 16)
        ds = DiskDataset4D.open(dataset_root)
        with pytest.raises(ValueError):
            ds.read_all()

    def test_missing_slice_file(self, dataset_root):
        os.remove(_slice_file(dataset_root))
        ds = DiskDataset4D.open(dataset_root)
        with pytest.raises(FileNotFoundError):
            ds.read_all()

    def test_corrupt_index_json(self, dataset_root):
        idx = os.path.join(dataset_root, node_dir_name(0), "index.json")
        with open(idx, "w") as fh:
            fh.write("{not json")
        with pytest.raises(Exception):
            DiskDataset4D.open(dataset_root)

    def test_index_pointing_at_missing_file(self, dataset_root):
        import json

        idx_path = os.path.join(dataset_root, node_dir_name(0), "index.json")
        with open(idx_path) as fh:
            doc = json.load(fh)
        doc["entries"][0][2] = "nonexistent.raw"
        with open(idx_path, "w") as fh:
            json.dump(doc, fh)
        ds = DiskDataset4D.open(dataset_root)
        t, z, _ = doc["entries"][0]
        with pytest.raises(FileNotFoundError):
            ds.read_slice(t, z)


class TestPipelineFaultPropagation:
    def test_truncated_slice_fails_pipeline(self, dataset_root):
        path = _slice_file(dataset_root, node=1, index=2)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(RuntimeError):
            run_pipeline(dataset_root, config())

    def test_missing_slice_fails_pipeline(self, dataset_root):
        os.remove(_slice_file(dataset_root, node=0, index=1))
        with pytest.raises(RuntimeError):
            run_pipeline(dataset_root, config())

    def test_dicom_position_tag_mismatch_detected(self, tmp_path):
        """Swapped DICOM files (wrong t/z tags) are caught on read."""
        vol = generate_phantom(PhantomConfig(shape=(8, 8, 4, 3), seed=1))
        root = str(tmp_path / "dcm")
        write_dataset(vol, root, num_nodes=1, file_format="dicom")
        d = os.path.join(root, node_dir_name(0))
        files = sorted(f for f in os.listdir(d) if f.endswith(".dcm"))
        a, b = os.path.join(d, files[0]), os.path.join(d, files[1])
        with open(a, "rb") as fa, open(b, "rb") as fb:
            data_a, data_b = fa.read(), fb.read()
        with open(a, "wb") as fh:
            fh.write(data_b)
        with open(b, "wb") as fh:
            fh.write(data_a)
        ds = DiskDataset4D.open(root)
        with pytest.raises(ValueError, match="position tags"):
            ds.read_all()

    def test_quantization_range_violation_fails(self, dataset_root):
        """A texture params intensity window that produces out-of-range
        levels can never happen (quantize clips); but already-quantized
        data claimed out of range must fail in the kernels."""
        from repro.core.cooccurrence import cooccurrence_matrix

        with pytest.raises(ValueError):
            cooccurrence_matrix(np.full((3, 3), 99), 8)

"""Acceptance: the full pipeline survives a texture-copy crash.

The PR's headline scenario: a FaultPlan crashes 1 of 4 HCC copies while
the run is in flight; retry + reroute must deliver stitched volumes
bit-identical to a failure-free run — on both runtimes.  With retries
disabled the same scenario must raise a structured PipelineError in
bounded time instead of hanging.
"""

import time

import numpy as np
import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.datacutter.faults import NO_RETRY, FaultPlan, PipelineError
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(12, 10, 6, 4), seed=0))
    root = str(tmp_path_factory.mktemp("ft_ds") / "data")
    write_dataset(vol, root, num_nodes=2)
    return root


def config():
    return AnalysisConfig(
        texture=TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "idm"),
            intensity_range=(0.0, 65535.0),
        ),
        variant="split",
        texture_chunk_shape=(8, 8, 6, 4),
        num_hcc_copies=4,
        num_hpc_copies=1,
    )


def crash_plan():
    # Demand-driven ties break toward copy 0, so HCC[0] deterministically
    # receives the first chunk and the crash always fires.
    return FaultPlan().crash_copy("HCC", copy_index=0, after_buffers=0)


@pytest.fixture(scope="module")
def clean_volumes(dataset_root):
    return run_pipeline(dataset_root, config()).volumes


@pytest.mark.parametrize("runtime", ["threads", "processes"])
def test_hcc_crash_recovers_bit_identical(dataset_root, clean_volumes, runtime):
    result = run_pipeline(
        dataset_root, config(), runtime=runtime, faults=crash_plan()
    )
    for name, vol in clean_volumes.items():
        assert np.array_equal(result.volumes[name], vol), name
    (failure,) = result.run.failed_copies
    assert failure.filter_name == "HCC" and failure.copy_index == 0
    assert failure.recovered
    assert result.run.reroutes >= 1


@pytest.mark.parametrize("runtime", ["threads", "processes"])
def test_hcc_crash_without_retry_fails_bounded(dataset_root, runtime):
    t0 = time.monotonic()
    with pytest.raises(PipelineError) as exc:
        run_pipeline(
            dataset_root,
            config(),
            runtime=runtime,
            retry=NO_RETRY,
            faults=crash_plan(),
        )
    assert time.monotonic() - t0 < 60
    assert any(f.filter_name == "HCC" for f in exc.value.failures)


def test_failure_summary_reported(dataset_root):
    from repro.pipeline.report import failure_summary, format_breakdown

    result = run_pipeline(dataset_root, config(), faults=crash_plan())
    summary = failure_summary(result.run)
    assert summary["failed_copies"] == 1
    assert summary["recovered_copies"] == 1
    assert summary["reroutes"] >= 1
    text = format_breakdown(result.run)
    assert "fault tolerance" in text
    assert "recovered" in text

"""End-to-end integration tests: parallel pipeline == sequential transform.

Every pipeline variant must produce feature volumes numerically identical
to the sequential reference (``haralick_transform``) on the same data.
"""

import os

import numpy as np
import pytest

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset

ROI = (3, 3, 3, 2)
LEVELS = 8
FEATURES = ("asm", "correlation", "sum_of_squares", "idm")
SHAPE = (16, 14, 6, 4)


@pytest.fixture(scope="module")
def volume():
    return generate_phantom(PhantomConfig(shape=SHAPE, seed=11))


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory, volume):
    root = str(tmp_path_factory.mktemp("ds") / "data")
    write_dataset(volume, root, num_nodes=3)
    return root


@pytest.fixture(scope="module")
def expected(volume):
    cfg = HaralickConfig(roi_shape=ROI, levels=LEVELS, features=FEATURES)
    from repro.core.quantization import quantize_linear

    q = quantize_linear(volume.data, LEVELS, lo=0.0, hi=65535.0)
    return haralick_transform(q, cfg, quantized=True)


def texture_params(sparse=False):
    return TextureParams(
        roi_shape=ROI,
        levels=LEVELS,
        features=FEATURES,
        intensity_range=(0.0, 65535.0),
        sparse=sparse,
    )


def assert_matches(volumes, expected):
    assert set(volumes) == set(FEATURES)
    for name in FEATURES:
        np.testing.assert_allclose(
            volumes[name], expected[name], atol=1e-10, err_msg=name
        )


class TestHMPVariant:
    def test_single_copy(self, dataset_root, expected):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4),
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)

    def test_many_copies(self, dataset_root, expected):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4),
            num_texture_copies=4,
            num_iic_copies=2,
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)

    def test_sparse_representation(self, dataset_root, expected):
        cfg = AnalysisConfig(
            texture=texture_params(sparse=True),
            variant="hmp",
            texture_chunk_shape=(10, 10, 6, 4),
            num_texture_copies=2,
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)

    def test_round_robin_scheduling(self, dataset_root, expected):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4),
            num_texture_copies=3,
            scheduling="round_robin",
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)


class TestSplitVariant:
    def test_split_dense(self, dataset_root, expected):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="split",
            texture_chunk_shape=(8, 8, 6, 4),
            num_hcc_copies=3,
            num_hpc_copies=1,
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)

    def test_split_sparse(self, dataset_root, expected):
        cfg = AnalysisConfig(
            texture=texture_params(sparse=True),
            variant="split",
            texture_chunk_shape=(8, 8, 6, 4),
            num_hcc_copies=2,
            num_hpc_copies=2,
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)


class TestTransports:
    def test_pipe_and_shm_outputs_bit_identical(self, dataset_root, expected):
        import sys

        if not sys.platform.startswith("linux"):
            pytest.skip("fork start method required")
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4),
            num_texture_copies=2,
        )
        results = {
            t: run_pipeline(
                dataset_root, cfg, runtime="processes", transport=t,
                # The toy dataset's chunks are tiny; lower the slab
                # threshold so they take the shared-memory path.
                **({"shm_threshold": 1024} if t == "shm" else {}),
            )
            for t in ("pipe", "shm")
        }
        for result in results.values():
            assert_matches(result.volumes, expected)
        for name in FEATURES:
            np.testing.assert_array_equal(
                results["pipe"].volumes[name],
                results["shm"].volumes[name],
                err_msg=name,
            )
        # The volumetric chunks crossed via slabs, not pipes.
        shm_run = results["shm"].run
        assert sum(shm_run.shm_bytes.values()) > 0
        assert sum(shm_run.wire_bytes.values()) < sum(
            results["pipe"].run.wire_bytes.values()
        )

    def test_transport_requires_processes_runtime(self, dataset_root):
        with pytest.raises(ValueError, match="transport"):
            run_pipeline(dataset_root, runtime="threads", transport="shm")


class TestOutputModes:
    def test_uso_output(self, dataset_root, expected, tmp_path):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4),
            num_texture_copies=2,
            output="uso",
            output_dir=str(tmp_path / "uso"),
            num_uso_copies=2,
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)
        files = result.run.deposits("uso_files")
        assert sum(f["records"] for f in files if f["feature"] == "asm") == int(
            np.prod(expected["asm"].shape)
        )

    def test_image_output(self, dataset_root, expected, tmp_path):
        out = str(tmp_path / "imgs")
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(16, 14, 6, 4),
            output="images",
            output_dir=out,
        )
        result = run_pipeline(dataset_root, cfg)
        assert_matches(result.volumes, expected)
        images = result.run.deposits("images")
        assert {i["feature"] for i in images} == set(FEATURES)
        # One PGM per (z, t) plane of the output volume.
        nz, nt = expected["asm"].shape[2], expected["asm"].shape[3]
        for info in images:
            assert info["count"] == nz * nt
        from repro.data.formats import read_pgm

        sample = os.path.join(out, "asm", "t0000_z0000.pgm")
        img = read_pgm(sample)
        assert img.shape == expected["asm"].shape[:2]


class TestDiagnostics:
    def test_busy_time_per_filter(self, dataset_root):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="split",
            texture_chunk_shape=(8, 8, 6, 4),
            num_hcc_copies=2,
        )
        result = run_pipeline(dataset_root, cfg)
        from repro.pipeline.report import filter_breakdown, format_breakdown

        stats = filter_breakdown(result.run)
        assert set(stats) == {"RFR", "IIC", "HCC", "HPC", "HIC"}
        assert stats["HCC"]["copies"] == 2
        # HCC (matrix computation) dominates HPC (paper: 4-5x).
        assert stats["HCC"]["total"] > stats["HPC"]["total"]
        text = format_breakdown(result.run, order=("RFR", "IIC", "HCC", "HPC"))
        assert "HCC" in text and "elapsed" in text

    def test_buffer_accounting(self, dataset_root):
        cfg = AnalysisConfig(
            texture=texture_params(),
            variant="hmp",
            texture_chunk_shape=(8, 8, 6, 4),
        )
        result = run_pipeline(dataset_root, cfg)
        from repro.pipeline.builder import plan_chunks
        from repro.storage.dataset import DiskDataset4D

        ds = DiskDataset4D.open(dataset_root)
        chunks = plan_chunks(ds.shape, cfg)
        assert result.run.buffers_sent["IIC:iic2tex"] == len(chunks)

"""Acceptance tests for the distributed pipeline backend.

The issue's bar: ``run_pipeline(..., runtime="distributed")`` over three
loopback agents must produce feature volumes bit-identical to the
sequential reference — including under an injected agent crash — and the
codec path must move every ndarray without an intermediate serialization
copy (asserted with the no-pickle-of-ndarray hook over the whole run).
"""

import sys

import numpy as np
import pytest

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.quantization import quantize_linear
from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.datacutter.faults import FaultPlan
from repro.datacutter.net import codec
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

SHAPE = (14, 12, 6, 4)
ROI = (3, 3, 3, 2)
LEVELS = 8
FEATURES = ("asm", "contrast")
HOSTS = ["127.0.0.1"] * 3


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=SHAPE, seed=6))
    root = str(tmp_path_factory.mktemp("dist") / "ds")
    write_dataset(vol, root, num_nodes=2)
    return root, vol


@pytest.fixture(scope="module")
def reference(dataset):
    _, vol = dataset
    q = quantize_linear(vol.data, LEVELS, lo=0.0, hi=65535.0)
    return haralick_transform(
        q,
        HaralickConfig(roi_shape=ROI, levels=LEVELS, features=FEATURES),
        quantized=True,
    )


def config():
    params = TextureParams(
        roi_shape=ROI, levels=LEVELS, features=FEATURES,
        intensity_range=(0.0, 65535.0),
    )
    return AnalysisConfig(
        texture=params, variant="hmp",
        texture_chunk_shape=(8, 8, 6, 4),
        num_texture_copies=4, num_iic_copies=2,
    )


class TestDistributedPipeline:
    def test_bit_identical_to_sequential(self, dataset, reference):
        root, _ = dataset
        result = run_pipeline(root, config(), runtime="distributed",
                              hosts=HOSTS)
        for name in FEATURES:
            np.testing.assert_array_equal(result.volumes[name],
                                          reference[name])
        assert result.run.failed_copies == []
        # Serialized transport: every stream reports its wire traffic.
        assert all(v > 0 for v in result.run.wire_bytes.values())

    def test_bit_identical_under_agent_crash(self, dataset, reference):
        root, _ = dataset
        plan = FaultPlan(seed=7).crash_agent(1, after_buffers=1)
        result = run_pipeline(root, config(), runtime="distributed",
                              hosts=HOSTS, faults=plan)
        for name in FEATURES:
            np.testing.assert_array_equal(result.volumes[name],
                                          reference[name])
        assert result.run.failed_copies != []
        assert all(f.recovered for f in result.run.failed_copies)
        assert result.run.reroutes >= 1

    def test_no_ndarray_serialization_copies(self, dataset, reference):
        root, _ = dataset
        with codec.forbid_array_copies():
            result = run_pipeline(root, config(), runtime="distributed",
                                  hosts=HOSTS)
        np.testing.assert_array_equal(result.volumes["asm"],
                                      reference["asm"])

    def test_hosts_require_distributed_runtime(self, dataset):
        root, _ = dataset
        with pytest.raises(ValueError, match="distributed"):
            run_pipeline(root, config(), runtime="threads", hosts=HOSTS)

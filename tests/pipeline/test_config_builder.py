"""Unit tests for pipeline configuration and graph building."""

import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.builder import build_graph, plan_chunks
from repro.pipeline.config import AnalysisConfig, clip_chunk_shape
from repro.storage.dataset import write_dataset


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(16, 16, 6, 4), seed=0))
    root = str(tmp_path_factory.mktemp("cfg_ds") / "data")
    return write_dataset(vol, root, num_nodes=3)


def params():
    return TextureParams(roi_shape=(3, 3, 3, 2), levels=8)


class TestClipChunkShape:
    def test_clips_to_dataset(self):
        assert clip_chunk_shape((50, 50, 32, 32), (16, 16, 6, 4), (3, 3, 3, 2)) == (
            16, 16, 6, 4,
        )

    def test_respects_roi_minimum(self):
        assert clip_chunk_shape((2, 2), (16, 16), (5, 5)) == (5, 5)

    def test_untouched_when_fits(self):
        assert clip_chunk_shape((8, 8), (16, 16), (3, 3)) == (8, 8)


class TestAnalysisConfig:
    def test_defaults_match_paper(self):
        cfg = AnalysisConfig()
        assert cfg.variant == "hmp"
        assert cfg.texture_chunk_shape == (50, 50, 32, 32)
        assert cfg.scheduling == "demand_driven"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(variant="bogus"),
            dict(output="bogus"),
            dict(scheduling="bogus"),
            dict(num_texture_copies=0),
            dict(output="uso"),  # needs output_dir
            dict(texture_chunk_shape=(4, 4)),  # ndim mismatch
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisConfig(texture=params(), **kwargs)

    def test_with_copies(self):
        cfg = AnalysisConfig(texture=params()).with_copies(num_texture_copies=8)
        assert cfg.num_texture_copies == 8

    def test_paper_split(self):
        cfg = AnalysisConfig(texture=params())
        assert cfg.paper_hcc_hpc_split(16) == (13, 3)
        assert cfg.paper_hcc_hpc_split(1) == (1, 1)


class TestPlanChunks:
    def test_chunks_tile_output(self, dataset):
        cfg = AnalysisConfig(texture=params(), texture_chunk_shape=(8, 8, 6, 4))
        chunks = plan_chunks(dataset.shape, cfg)
        import numpy as np

        from repro.core.roi import valid_positions_shape

        grid = valid_positions_shape(dataset.shape, cfg.texture.roi)
        cover = np.zeros(grid, dtype=int)
        for c in chunks:
            cover[c.own_slices()] += 1
        assert np.all(cover == 1)

    def test_oversized_chunk_clipped(self, dataset):
        cfg = AnalysisConfig(texture=params())  # default 50x50x32x32
        chunks = plan_chunks(dataset.shape, cfg)
        assert len(chunks) == 1


class TestBuildGraph:
    def test_hmp_graph_structure(self, dataset):
        cfg = AnalysisConfig(
            texture=params(),
            texture_chunk_shape=(8, 8, 6, 4),
            num_texture_copies=3,
            num_iic_copies=2,
        )
        g = build_graph(dataset, cfg)
        assert set(g.filters) == {"RFR", "IIC", "HMP", "HIC"}
        assert g.copies("RFR") == dataset.num_nodes
        assert g.copies("IIC") == 2
        assert g.copies("HMP") == 3
        edge = g.in_edges("IIC")[0]
        assert edge.policy == "explicit"

    def test_split_graph_structure(self, dataset):
        cfg = AnalysisConfig(
            texture=params(),
            variant="split",
            texture_chunk_shape=(8, 8, 6, 4),
            num_hcc_copies=4,
            num_hpc_copies=2,
            scheduling="round_robin",
        )
        g = build_graph(dataset, cfg)
        assert set(g.filters) == {"RFR", "IIC", "HCC", "HPC", "HIC"}
        assert g.in_edges("HPC")[0].policy == "round_robin"

    def test_image_output_adds_jiw(self, dataset, tmp_path):
        cfg = AnalysisConfig(
            texture=params(),
            texture_chunk_shape=(8, 8, 6, 4),
            output="images",
            output_dir=str(tmp_path),
        )
        g = build_graph(dataset, cfg)
        assert "JIW" in g.filters
        assert g.in_edges("JIW")[0].src == "HIC"

    def test_uso_output_graph(self, dataset, tmp_path):
        cfg = AnalysisConfig(
            texture=params(),
            texture_chunk_shape=(8, 8, 6, 4),
            output="uso",
            output_dir=str(tmp_path),
            num_uso_copies=2,
        )
        g = build_graph(dataset, cfg)
        assert g.copies("USO") == 2
        assert "HIC" not in g.filters

"""Tests for the sequential out-of-core driver."""

import numpy as np
import pytest

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.quantization import quantize_linear
from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.sequential import iter_chunk_features, transform_disk_dataset
from repro.storage.dataset import DiskDataset4D, write_dataset


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(18, 16, 6, 4), seed=4))
    root = str(tmp_path_factory.mktemp("seq_ds") / "data")
    write_dataset(vol, root, num_nodes=3)
    params = TextureParams(
        roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "contrast"),
        intensity_range=(0.0, 65535.0),
    )
    cfg = AnalysisConfig(texture=params, texture_chunk_shape=(8, 8, 6, 4))
    return vol, root, cfg


class TestTransformDiskDataset:
    def test_matches_in_memory_reference(self, setup):
        vol, root, cfg = setup
        got = transform_disk_dataset(root, cfg)
        q = quantize_linear(vol.data, 8, lo=0.0, hi=65535.0)
        want = haralick_transform(
            q,
            HaralickConfig(roi_shape=(3, 3, 3, 2), levels=8,
                           features=("asm", "contrast")),
            quantized=True,
        )
        np.testing.assert_allclose(got["asm"], want["asm"], atol=1e-12)
        np.testing.assert_allclose(got["contrast"], want["contrast"], atol=1e-10)

    def test_matches_parallel_pipeline(self, setup):
        from repro.pipeline.run import run_pipeline

        vol, root, cfg = setup
        seq = transform_disk_dataset(root, cfg)
        par = run_pipeline(root, cfg.with_copies(num_texture_copies=2))
        for name in cfg.texture.features:
            np.testing.assert_allclose(seq[name], par.volumes[name], atol=1e-12)

    def test_chunk_iterator_bounded_memory(self, setup):
        vol, root, cfg = setup
        dataset = DiskDataset4D.open(root)
        count = 0
        for chunk, local in iter_chunk_features(dataset, cfg):
            count += 1
            grid = tuple(s - r + 1 for s, r in zip(chunk.shape, (3, 3, 3, 2)))
            assert local["asm"].shape == grid
        from repro.pipeline.builder import plan_chunks

        assert count == len(plan_chunks(dataset.shape, cfg))

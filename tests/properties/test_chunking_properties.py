"""Property-based tests for chunk partitioning and stitching invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunks.chunking import (
    flat_to_global,
    overlap,
    owned_flat_mask,
    partition,
    partition_grid_shape,
)
from repro.core.roi import ROISpec, valid_positions_shape


@st.composite
def partition_cases(draw, ndim=2):
    """Random (dataset shape, ROI, chunk shape) with chunk >= ROI <= data."""
    roi = tuple(draw(st.integers(1, 5)) for _ in range(ndim))
    shape = tuple(r + draw(st.integers(0, 20)) for r in roi)
    chunk = tuple(
        min(r + draw(st.integers(0, 12)), s) for r, s in zip(roi, shape)
    )
    return shape, ROISpec(roi), chunk


class TestPartitionProperties:
    @given(partition_cases())
    @settings(max_examples=100, deadline=None)
    def test_ownership_tiles_output_exactly(self, case):
        shape, roi, chunk_shape = case
        grid = valid_positions_shape(shape, roi)
        cover = np.zeros(grid, dtype=int)
        for c in partition(shape, roi, chunk_shape):
            cover[c.own_slices()] += 1
        assert np.all(cover == 1)

    @given(partition_cases())
    @settings(max_examples=100, deadline=None)
    def test_every_owned_roi_inside_chunk_input(self, case):
        shape, roi, chunk_shape = case
        for c in partition(shape, roi, chunk_shape):
            for d in range(len(shape)):
                assert 0 <= c.lo[d] <= c.own_lo[d]
                assert c.own_hi[d] - 1 + roi.shape[d] <= c.hi[d] <= shape[d]

    @given(partition_cases())
    @settings(max_examples=100, deadline=None)
    def test_grid_shape_matches_chunk_count(self, case):
        shape, roi, chunk_shape = case
        grid = partition_grid_shape(shape, roi, chunk_shape)
        assert len(partition(shape, roi, chunk_shape)) == int(np.prod(grid))

    @given(partition_cases(ndim=3))
    @settings(max_examples=50, deadline=None)
    def test_3d_partitions(self, case):
        shape, roi, chunk_shape = case
        total = sum(c.num_rois for c in partition(shape, roi, chunk_shape))
        assert total == int(np.prod(valid_positions_shape(shape, roi)))

    @given(partition_cases())
    @settings(max_examples=60, deadline=None)
    def test_adjacent_overlap_is_roi_minus_one(self, case):
        shape, roi, chunk_shape = case
        chunks = partition(shape, roi, chunk_shape)
        by_index = {c.index: c for c in chunks}
        for c in chunks:
            for d in range(len(shape)):
                nxt = list(c.index)
                nxt[d] += 1
                other = by_index.get(tuple(nxt))
                if other is None:
                    continue
                got = c.hi[d] - other.lo[d]
                # Interior neighbours share exactly ROI-1 input planes
                # (clipped chunks at the border may share fewer).
                assert got <= overlap(roi.shape[d]) + roi.shape[d] - 1
                if c.hi[d] - c.lo[d] == chunk_shape[d]:
                    assert got == overlap(roi.shape[d])


class TestFlatHelpers:
    @given(partition_cases())
    @settings(max_examples=60, deadline=None)
    def test_owned_mask_counts(self, case):
        shape, roi, chunk_shape = case
        for c in partition(shape, roi, chunk_shape):
            mask = owned_flat_mask(c, roi)
            local = 1
            for s, r in zip(c.shape, roi.shape):
                local *= s - r + 1
            assert mask.shape == (local,)
            assert mask.sum() == c.num_rois

    @given(partition_cases())
    @settings(max_examples=60, deadline=None)
    def test_flat_to_global_round_trip(self, case):
        shape, roi, chunk_shape = case
        grid = valid_positions_shape(shape, roi)
        seen = set()
        for c in partition(shape, roi, chunk_shape):
            mask = owned_flat_mask(c, roi)
            flat = np.flatnonzero(mask)
            coords = flat_to_global(c, roi, flat)
            for row in coords:
                key = tuple(int(v) for v in row)
                assert all(0 <= k < g for k, g in zip(key, grid))
                assert key not in seen
                seen.add(key)
        assert len(seen) == int(np.prod(grid))

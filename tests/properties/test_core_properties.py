"""Property-based tests (hypothesis) for the core Haralick kernels."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.cooccurrence import cooccurrence_matrix, cooccurrence_scan
from repro.core.directions import canonical_direction, unique_directions
from repro.core.features import PAPER_FEATURES, haralick_features
from repro.core.features_sparse import features_nonzero
from repro.core.quantization import quantize_linear
from repro.core.roi import ROISpec
from repro.core.sparse import sparse_from_dense


def windows_2d(min_side=2, max_side=8, levels=6):
    return hnp.arrays(
        dtype=np.int32,
        shape=st.tuples(
            st.integers(min_side, max_side), st.integers(min_side, max_side)
        ),
        elements=st.integers(0, levels - 1),
    )


class TestCooccurrenceProperties:
    @given(windows_2d())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, window):
        m = cooccurrence_matrix(window, 6)
        assert np.array_equal(m, m.T)

    @given(windows_2d())
    @settings(max_examples=60, deadline=None)
    def test_total_counts_pair_census(self, window):
        """Sum over the matrix = 2 x (number of in-bounds pairs)."""
        m = cooccurrence_matrix(window, 6)
        nx, ny = window.shape
        pairs = 0
        for v in unique_directions(2):
            dx, dy = abs(v[0]), abs(v[1])
            if nx > dx and ny > dy:
                pairs += (nx - dx) * (ny - dy)
        assert m.sum() == 2 * pairs

    @given(windows_2d(), st.permutations(list(range(6))))
    @settings(max_examples=40, deadline=None)
    def test_grey_level_relabeling_permutes_matrix(self, window, perm):
        """Relabeling grey levels permutes matrix rows/cols identically."""
        perm = np.asarray(perm)
        m1 = cooccurrence_matrix(window, 6)
        m2 = cooccurrence_matrix(perm[window], 6)
        inv = np.argsort(perm)  # m2[i, j] counts pairs with old labels inv[i], inv[j]
        assert np.array_equal(m2, m1[np.ix_(inv, inv)])

    @given(windows_2d())
    @settings(max_examples=40, deadline=None)
    def test_transpose_invariance(self, window):
        """Spatial transpose maps direction set onto itself -> same GLCM."""
        a = cooccurrence_matrix(window, 6)
        b = cooccurrence_matrix(window.T, 6)
        assert np.array_equal(a, b)

    @given(windows_2d(min_side=3, max_side=7))
    @settings(max_examples=30, deadline=None)
    def test_scan_consistent_with_single_windows(self, data):
        roi = ROISpec((2, 2))
        for start, mats in cooccurrence_scan(data, roi, 6, batch=3):
            grid = tuple(s - 1 for s in data.shape)
            for k in range(mats.shape[0]):
                ox, oy = np.unravel_index(start + k, grid)
                want = cooccurrence_matrix(data[ox : ox + 2, oy : oy + 2], 6)
                assert np.array_equal(mats[k], want)


class TestSparseProperties:
    @given(windows_2d())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, window):
        m = cooccurrence_matrix(window, 6)
        assert np.array_equal(sparse_from_dense(m).to_dense(), m)

    @given(windows_2d())
    @settings(max_examples=60, deadline=None)
    def test_total_preserved(self, window):
        m = cooccurrence_matrix(window, 6)
        assert sparse_from_dense(m).total == m.sum()

    @given(windows_2d())
    @settings(max_examples=40, deadline=None)
    def test_nonzero_features_match_dense(self, window):
        m = cooccurrence_matrix(window, 6)
        if m.sum() == 0:
            return
        dense = haralick_features(m, PAPER_FEATURES)
        nz = features_nonzero(m, PAPER_FEATURES)
        for name in PAPER_FEATURES:
            assert nz[name] == pytest.approx(float(dense[name]), abs=1e-9)


class TestFeatureProperties:
    @given(windows_2d(min_side=3))
    @settings(max_examples=60, deadline=None)
    def test_feature_ranges(self, window):
        m = cooccurrence_matrix(window, 6)
        if m.sum() == 0:
            return
        f = haralick_features(m)
        assert 0 <= f["asm"] <= 1
        assert 0 <= f["idm"] <= 1
        assert -1 - 1e-9 <= f["correlation"] <= 1 + 1e-9
        assert f["entropy"] >= 0
        assert f["contrast"] >= 0
        assert f["sum_of_squares"] >= 0
        assert 0 <= f["imc2"] <= 1
        assert 0 <= f["mcc"] <= 1

    @given(windows_2d(), st.integers(2, 50))
    @settings(max_examples=40, deadline=None)
    def test_count_scaling_invariance(self, window, k):
        """Features depend on the normalized p, not raw counts."""
        m = cooccurrence_matrix(window, 6)
        if m.sum() == 0:
            return
        a = haralick_features(m, PAPER_FEATURES)
        b = haralick_features(k * m, PAPER_FEATURES)
        for name in PAPER_FEATURES:
            assert a[name] == pytest.approx(float(b[name]))

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_constant_window_is_maximally_uniform(self, level):
        window = np.full((4, 4), level)
        f = haralick_features(cooccurrence_matrix(window, 6))
        assert f["asm"] == pytest.approx(1.0)
        assert f["idm"] == pytest.approx(1.0)
        assert f["contrast"] == pytest.approx(0.0)
        assert f["entropy"] == pytest.approx(0.0)


class TestQuantizationProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.integers(2, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_in_range(self, data, levels):
        q = quantize_linear(data, levels)
        assert q.min() >= 0
        assert q.max() <= levels - 1

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(2, 100),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.integers(2, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, data, levels):
        """Quantization preserves intensity ordering."""
        q = quantize_linear(data, levels)
        order = np.argsort(data, kind="stable")
        assert np.all(np.diff(q[order]) >= 0)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 100),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        ),
        st.integers(2, 32),
        st.floats(0.1, 10.0),
        st.floats(-5.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_affine_invariance(self, data, levels, scale, shift):
        """Affine intensity transforms preserve the quantization on
        well-conditioned data; values on a bin edge may round to the
        neighbouring level after the float transform.  (Data whose range
        is tiny relative to its magnitude suffers catastrophic
        cancellation and is excluded — no binning survives that.)"""
        if data.size:
            rng_ = float(data.max() - data.min())
            mag = float(np.abs(data).max())
            assume(rng_ == 0 or rng_ > 1e-6 * max(mag, 1.0))
        q1 = quantize_linear(data, levels)
        q2 = quantize_linear(data * scale + shift, levels)
        assert np.abs(q1 - q2).max(initial=0) <= 1
        # Ordering is still preserved exactly.
        order = np.argsort(data, kind="stable")
        assert np.all(np.diff(q2[order]) >= 0)


class TestDirectionProperties:
    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_canonical_fixed_point(self, v):
        if all(c == 0 for c in v):
            return
        c = canonical_direction(v)
        assert canonical_direction(c) == c
        assert canonical_direction(tuple(-x for x in v)) == c
        # First non-zero component positive.
        first = next(x for x in c if x != 0)
        assert first > 0

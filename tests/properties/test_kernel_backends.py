"""Property-based tests: every scan backend is bit-identical to the
reference Fig. 2 kernel.

The batched, incremental and megabatch backends are pure performance
reimplementations of ``reference_scan`` — integer count arithmetic only,
so equality must be exact (``array_equal``), not approximate, across
random dimensionalities, ROI shapes (including degenerate extent-1
windows and directions that do not fit the window), direction subsets,
distances >= 1, grey-level counts, batch sizes and the symmetric flag.

The ``gpu`` kernel is excluded from the generic loops: without a CUDA
device it is megabatch behind a fallback warning (covered in
``tests/core/test_gpu_backend.py``); with one, the ``@pytest.mark.gpu``
property test at the bottom runs the same bit-identity law on device.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import (
    KERNELS,
    get_kernel,
    megabatch_scan,
    reference_scan,
)
from repro.core.directions import unique_directions
from repro.core.gpu import gpu_scan, probe_gpu
from repro.core.masking import mask_to_positions, masked_feature_samples
from repro.core.raster import raster_scan
from repro.core.roi import ROISpec, valid_positions_shape
from repro.core.workspace import WORKSPACE_BYTES

# Kernels exercised by the generic hypothesis loops (everything but the
# device-dependent gpu entry).
CPU_KERNELS = tuple(k for k in KERNELS if k not in ("reference", "gpu"))


def _collect(scan, data, roi, levels, directions, distance, batch, symmetric):
    parts = []
    expect_start = 0
    for start, mats in scan(
        data,
        roi,
        levels,
        directions,
        distance,
        batch=batch,
        symmetric=symmetric,
    ):
        assert start == expect_start, "batches must arrive in raster order"
        assert 0 < mats.shape[0] <= batch
        assert mats.shape[1:] == (levels, levels)
        expect_start += mats.shape[0]
        parts.append(np.asarray(mats))
    out = np.concatenate(parts) if parts else np.zeros((0, levels, levels), int)
    assert out.shape[0] == int(np.prod(valid_positions_shape(data.shape, roi)))
    return out


@st.composite
def scan_cases(draw):
    ndim = draw(st.integers(1, 4))
    # Degenerate extent-1 window axes are allowed and must be handled.
    roi = tuple(draw(st.integers(1, 4)) for _ in range(ndim))
    shape = tuple(r + draw(st.integers(0, 4)) for r in roi)
    levels = draw(st.sampled_from([8, 16, 32]))
    distance = draw(st.integers(1, 2))
    dirs = unique_directions(ndim)
    n = draw(st.integers(1, len(dirs)))
    subset = draw(st.permutations(range(len(dirs))))[:n]
    directions = tuple(dirs[i] for i in sorted(subset))
    batch = draw(st.sampled_from([1, 3, 17, 4096]))
    symmetric = draw(st.booleans())
    seed = draw(st.integers(0, 2**31 - 1))
    data = np.random.default_rng(seed).integers(0, levels, size=shape)
    return data, ROISpec(roi), levels, directions, distance, batch, symmetric


class TestBackendBitIdentity:
    @pytest.mark.parametrize("kernel", CPU_KERNELS)
    @given(case=scan_cases())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_reference(self, kernel, case):
        data, roi, levels, directions, distance, batch, symmetric = case
        ref = _collect(reference_scan, data, roi, levels, directions,
                       distance, batch, symmetric)
        got = _collect(get_kernel(kernel), data, roi, levels, directions,
                       distance, batch, symmetric)
        assert got.dtype.kind in "iu"
        assert np.array_equal(got, ref)

    @given(case=scan_cases())
    @settings(max_examples=30, deadline=None)
    def test_batched_equals_incremental(self, case):
        data, roi, levels, directions, distance, batch, symmetric = case
        a = _collect(get_kernel("batched"), data, roi, levels, directions,
                     distance, batch, symmetric)
        b = _collect(get_kernel("incremental"), data, roi, levels, directions,
                     distance, batch, symmetric)
        assert np.array_equal(a, b)


def _identical(a_scan, b_scan, data, roi, levels, **kw):
    a = [(s, np.array(m)) for s, m in a_scan(data, roi, levels, **kw)]
    b = [(s, np.array(m)) for s, m in b_scan(data, roi, levels, **kw)]
    assert len(a) == len(b)
    for (s0, m0), (s1, m1) in zip(a, b):
        assert s0 == s1
        assert np.array_equal(m0, m1)


class TestMegabatchEdgeCases:
    """Deterministic corner cases the whole-chunk accumulator must get
    right: they stress the row/plane bookkeeping (degenerate windows, no
    fitting direction), the non-cubic stride math, and the all-equal
    histogram degenerate case."""

    def test_degenerate_extent_one_window(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 8, size=(6, 5, 4), dtype=np.int32)
        for roi in [(1, 1, 1), (1, 3, 2), (3, 1, 1), (2, 2, 1)]:
            _identical(megabatch_scan, reference_scan, data, ROISpec(roi), 8)

    def test_no_fitting_direction_yields_zeros(self):
        # A (1, 1) window admits no distance-1 pair at all: every matrix
        # must come back exactly zero, not garbage from an uninitialized
        # accumulator.
        data = np.arange(12, dtype=np.int32).reshape(4, 3) % 8
        out = np.concatenate(
            [np.asarray(m) for _s, m in megabatch_scan(data, ROISpec((1, 1)), 8)]
        )
        assert out.shape == (12, 8, 8)
        assert not out.any()

    def test_non_cubic_chunks(self):
        rng = np.random.default_rng(1)
        for shape, roi in [
            ((13, 4, 3), (3, 2, 2)),
            ((3, 17, 2), (2, 4, 1)),
            ((5, 5, 5, 9), (2, 2, 2, 4)),
            ((2, 2, 2, 2), (2, 2, 2, 2)),
        ]:
            data = rng.integers(0, 16, size=shape, dtype=np.int32)
            _identical(megabatch_scan, reference_scan, data, ROISpec(roi), 16)

    def test_all_levels_equal_volume(self):
        # A constant volume concentrates every count on one diagonal bin.
        data = np.full((6, 5, 4), 3, dtype=np.int32)
        roi = ROISpec((3, 3, 2))
        _identical(megabatch_scan, reference_scan, data, roi, 8)
        for _s, m in megabatch_scan(data, roi, 8):
            mats = np.asarray(m)
            assert not mats[:, :3, :3].any() or mats[:, 3, 3].all()
            hot = mats.reshape(mats.shape[0], -1)
            assert (hot.sum(axis=1) == mats[:, 3, 3]).all()

    def test_masked_analysis_matches_reference(self):
        # Megabatch through the full analysis path, restricted by a
        # voxel mask: masked feature samples must match the reference
        # kernel's sample-for-sample.
        rng = np.random.default_rng(2)
        shape = (8, 7, 6, 4)
        data = rng.integers(0, 8, size=shape, dtype=np.int32)
        roi = ROISpec((3, 3, 3, 2))
        mask = np.zeros(shape[:3], dtype=bool)
        mask[2:6, 1:5, 2:4] = True
        positions = mask_to_positions(mask, shape, roi)
        assert positions.any() and not positions.all()
        out = {
            k: masked_feature_samples(
                raster_scan(data, roi, 8, kernel=k), positions
            )
            for k in ("reference", "megabatch")
        }
        for name, want in out["reference"].items():
            assert np.array_equal(out["megabatch"][name], want), name

    def test_peak_memory_within_budget(self):
        # The whole-chunk accumulator is the design's one big allocation;
        # everything else must stay inside a few workspace quanta.
        rng = np.random.default_rng(3)
        data = rng.integers(0, 32, size=(24, 24, 16, 7), dtype=np.int32)
        roi = ROISpec((5, 5, 5, 3))
        grid = valid_positions_shape(data.shape, roi)
        npos = int(np.prod(grid))
        mats_bytes = npos * 32 * 32 * 8
        tracemalloc.start()
        try:
            for _ in megabatch_scan(data, roi, 32, batch=2048):
                pass
            _cur, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak <= mats_bytes + 3 * WORKSPACE_BYTES, (
            f"peak {peak / 2**20:.1f} MiB exceeds budget "
            f"{(mats_bytes + 3 * WORKSPACE_BYTES) / 2**20:.1f} MiB"
        )


@pytest.mark.gpu
@pytest.mark.skipif(not probe_gpu().available, reason="no CUDA device")
class TestGpuBitIdentity:
    @given(case=scan_cases())
    @settings(max_examples=25, deadline=None)
    def test_gpu_bit_identical_to_reference(self, case):
        data, roi, levels, directions, distance, batch, symmetric = case
        ref = _collect(reference_scan, data, roi, levels, directions,
                       distance, batch, symmetric)
        got = _collect(gpu_scan, data, roi, levels, directions,
                       distance, batch, symmetric)
        assert np.array_equal(got, ref)

"""Property-based tests: every scan backend is bit-identical to the
reference Fig. 2 kernel.

The batched and incremental backends are pure performance
reimplementations of ``reference_scan`` — integer count arithmetic only,
so equality must be exact (``array_equal``), not approximate, across
random dimensionalities, ROI shapes (including degenerate extent-1
windows and directions that do not fit the window), direction subsets,
distances >= 1, grey-level counts, batch sizes and the symmetric flag.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import KERNELS, get_kernel, reference_scan
from repro.core.directions import unique_directions
from repro.core.roi import ROISpec, valid_positions_shape


def _collect(scan, data, roi, levels, directions, distance, batch, symmetric):
    parts = []
    expect_start = 0
    for start, mats in scan(
        data,
        roi,
        levels,
        directions,
        distance,
        batch=batch,
        symmetric=symmetric,
    ):
        assert start == expect_start, "batches must arrive in raster order"
        assert 0 < mats.shape[0] <= batch
        assert mats.shape[1:] == (levels, levels)
        expect_start += mats.shape[0]
        parts.append(np.asarray(mats))
    out = np.concatenate(parts) if parts else np.zeros((0, levels, levels), int)
    assert out.shape[0] == int(np.prod(valid_positions_shape(data.shape, roi)))
    return out


@st.composite
def scan_cases(draw):
    ndim = draw(st.integers(1, 4))
    # Degenerate extent-1 window axes are allowed and must be handled.
    roi = tuple(draw(st.integers(1, 4)) for _ in range(ndim))
    shape = tuple(r + draw(st.integers(0, 4)) for r in roi)
    levels = draw(st.sampled_from([8, 16, 32]))
    distance = draw(st.integers(1, 2))
    dirs = unique_directions(ndim)
    n = draw(st.integers(1, len(dirs)))
    subset = draw(st.permutations(range(len(dirs))))[:n]
    directions = tuple(dirs[i] for i in sorted(subset))
    batch = draw(st.sampled_from([1, 3, 17, 4096]))
    symmetric = draw(st.booleans())
    seed = draw(st.integers(0, 2**31 - 1))
    data = np.random.default_rng(seed).integers(0, levels, size=shape)
    return data, ROISpec(roi), levels, directions, distance, batch, symmetric


class TestBackendBitIdentity:
    @pytest.mark.parametrize("kernel", [k for k in KERNELS if k != "reference"])
    @given(case=scan_cases())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_reference(self, kernel, case):
        data, roi, levels, directions, distance, batch, symmetric = case
        ref = _collect(reference_scan, data, roi, levels, directions,
                       distance, batch, symmetric)
        got = _collect(get_kernel(kernel), data, roi, levels, directions,
                       distance, batch, symmetric)
        assert got.dtype.kind in "iu"
        assert np.array_equal(got, ref)

    @given(case=scan_cases())
    @settings(max_examples=30, deadline=None)
    def test_batched_equals_incremental(self, case):
        data, roi, levels, directions, distance, batch, symmetric = case
        a = _collect(get_kernel("batched"), data, roi, levels, directions,
                     distance, batch, symmetric)
        b = _collect(get_kernel("incremental"), data, roi, levels, directions,
                     distance, batch, symmetric)
        assert np.array_equal(a, b)

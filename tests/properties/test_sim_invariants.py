"""Invariant tests for the cluster simulator.

These check conservation laws and physical bounds rather than specific
figure shapes: no simulated run may finish faster than its compute or
communication lower bounds, busy time may not exceed wall time, and
every buffer the workload implies must be delivered exactly once.
"""

import pytest

from repro.sim import PAPER_COSTS, SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_hmp, homogeneous_split

WL = paper_workload(scale=0.4)


def scan_rois(wl):
    return sum(sum(wl.packets_per_chunk(c)) for c in wl.chunks)


class TestConservation:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_chunk_count(self, n):
        rep = SimRuntime(WL, *homogeneous_hmp(n)).run()
        assert rep.stream_buffers["iic2tex"] == len(WL.chunks)

    def test_packet_count_matches_workload(self):
        rep = SimRuntime(WL, *homogeneous_split(4)).run()
        packets = sum(len(WL.packets_per_chunk(c)) for c in WL.chunks)
        assert rep.stream_buffers["hcc2hpc"] == packets
        assert rep.stream_buffers["tex2uso"] == packets

    def test_slice_deliveries(self):
        rep = SimRuntime(WL, *homogeneous_hmp(2)).run()
        # One IIC copy: each slice needed by >= 1 chunk arrives exactly once.
        needed = len(WL.rfr_slice_destinations(1))
        assert rep.stream_buffers["rfr2iic"] == needed

    def test_matrix_bytes_match_cost_model(self):
        rep = SimRuntime(WL, *homogeneous_split(4, sparse=False)).run()
        want = PAPER_COSTS.matrix_wire_bytes(scan_rois(WL), WL.levels, False)
        assert rep.stream_bytes["hcc2hpc"] == want


class TestPhysicalBounds:
    @pytest.mark.parametrize("n", [1, 2, 8])
    def test_busy_within_makespan(self, n):
        rep = SimRuntime(WL, *homogeneous_split(n, sparse=True)).run()
        for key, busy in rep.busy.items():
            assert 0 <= busy <= rep.makespan + 1e-9, key

    @pytest.mark.parametrize("n", [1, 4, 16])
    def test_compute_lower_bound(self, n):
        """Makespan >= total texture work / aggregate speed."""
        rep = SimRuntime(WL, *homogeneous_hmp(n)).run()
        work = scan_rois(WL) * PAPER_COSTS.hmp_per_roi(False)
        assert rep.makespan >= work / n - 1e-9

    def test_communication_lower_bound(self):
        """Dense split: makespan >= matrix bytes / HPC in-port capacity."""
        spec, cluster, placement = homogeneous_split(8, sparse=False)
        rep = SimRuntime(WL, spec, cluster, placement).run()
        from repro.sim.clusters import MBIT

        bytes_total = rep.stream_bytes["hcc2hpc"]
        n_hpc = spec.num_hpc
        assert rep.makespan >= bytes_total / (n_hpc * 100 * MBIT) - 1e-9

    def test_adding_nodes_never_hurts_much(self):
        """HMP makespan is (weakly) improved by more texture nodes."""
        times = [
            SimRuntime(WL, *homogeneous_hmp(n)).run().makespan
            for n in (1, 2, 4, 8, 16)
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.02  # allow scheduling jitter


class TestDeterminism:
    def test_repeat_runs_identical(self):
        a = SimRuntime(WL, *homogeneous_split(6, sparse=True)).run()
        b = SimRuntime(WL, *homogeneous_split(6, sparse=True)).run()
        assert a.makespan == b.makespan
        assert a.busy == b.busy
        assert a.stream_bytes == b.stream_bytes

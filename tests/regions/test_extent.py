"""Property tests for the region addressing vocabulary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regions import RegionExtent, RegionTemplate, region_key


@st.composite
def extents(draw, ndim=None):
    n = ndim if ndim is not None else draw(st.integers(1, 4))
    lo = [draw(st.integers(0, 40)) for _ in range(n)]
    hi = [l + draw(st.integers(1, 20)) for l in lo]
    return RegionExtent(tuple(lo), tuple(hi))


@st.composite
def extent_pairs(draw):
    n = draw(st.integers(1, 4))
    return draw(extents(ndim=n)), draw(extents(ndim=n))


class TestRegionExtent:
    def test_rejects_empty_and_inverted(self):
        with pytest.raises(ValueError):
            RegionExtent((0,), (0,))
        with pytest.raises(ValueError):
            RegionExtent((5, 0), (3, 4))
        with pytest.raises(ValueError):
            RegionExtent((), ())

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            RegionExtent((0, 0), (4,))
        with pytest.raises(ValueError):
            RegionExtent((0, 0), (4, 4)).intersect(RegionExtent((0,), (4,)))

    @given(extents())
    @settings(max_examples=100, deadline=None)
    def test_shape_and_voxels(self, e):
        assert e.shape == tuple(h - l for l, h in zip(e.lo, e.hi))
        assert e.num_voxels == int(np.prod(e.shape))
        assert e.ndim == len(e.lo)

    @given(extent_pairs())
    @settings(max_examples=100, deadline=None)
    def test_intersect_symmetric_and_contained(self, pair):
        a, b = pair
        ab, ba = a.intersect(b), b.intersect(a)
        assert ab == ba
        if ab is not None:
            assert a.contains(ab) and b.contains(ab)
            # The intersection is maximal: growing any face by one voxel
            # escapes at least one operand.
            assert ab.num_voxels <= min(a.num_voxels, b.num_voxels)

    @given(extent_pairs())
    @settings(max_examples=100, deadline=None)
    def test_intersect_matches_pointwise_overlap(self, pair):
        a, b = pair
        # Disjointness along any axis <=> no intersection.
        disjoint = any(
            ah <= bl or bh <= al
            for al, ah, bl, bh in zip(a.lo, a.hi, b.lo, b.hi)
        )
        assert (a.intersect(b) is None) == disjoint

    @given(extent_pairs())
    @settings(max_examples=100, deadline=None)
    def test_slices_select_exact_coordinates(self, pair):
        a, b = pair
        ov = a.intersect(b)
        if ov is None:
            return
        # Fill an array over `a` with global coordinates of one axis and
        # check the slices select exactly the overlap's coordinate range.
        axis = 0
        arr = np.empty(a.shape, dtype=np.int64)
        coords = np.arange(a.lo[axis], a.hi[axis])
        arr[:] = coords.reshape((-1,) + (1,) * (a.ndim - 1))
        sel = arr[ov.slices_in(a)]
        assert sel.shape == ov.shape
        assert sel.min() == ov.lo[axis] and sel.max() == ov.hi[axis] - 1

    def test_slices_in_requires_containment(self):
        outer = RegionExtent((0, 0), (4, 4))
        inner = RegionExtent((2, 2), (6, 6))
        with pytest.raises(ValueError):
            inner.slices_in(outer)

    @given(extents())
    @settings(max_examples=100, deadline=None)
    def test_key_is_canonical(self, e):
        # Same box -> same key; the key parses back to the same extent.
        assert e.key() == RegionExtent(e.lo, e.hi).key()
        parsed = [tuple(int(v) for v in part.split(":"))
                  for part in e.key().split(",")]
        assert tuple(p[0] for p in parsed) == e.lo
        assert tuple(p[1] for p in parsed) == e.hi

    @given(extent_pairs())
    @settings(max_examples=100, deadline=None)
    def test_key_injective(self, pair):
        a, b = pair
        assert (a.key() == b.key()) == (a == b)


class TestRegionTemplate:
    def test_name_validation(self):
        for bad in ("", "a|b", "a/b"):
            with pytest.raises(ValueError):
                RegionTemplate(bad)

    def test_extent_dim_validation(self):
        tmpl = RegionTemplate("t", ndim=4)
        tmpl.validate(RegionExtent((0, 0, 0, 0), (1, 1, 1, 1)))
        with pytest.raises(ValueError):
            tmpl.validate(RegionExtent((0,), (1,)))

    def test_region_key_scopes_by_template(self):
        e = RegionExtent((0, 0), (4, 4))
        assert region_key("a", e) != region_key("b", e)
        assert region_key("a", e) == f"a|{e.key()}"

"""Spill/evict/promote behaviour of the storage hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regions import (
    DROPPED,
    InMemoryRemoteClient,
    RamTier,
    RemoteTier,
    StagingPolicy,
    StorageHierarchy,
    format_staging,
    parse_staging,
)


def _arr(nbytes, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nbytes).astype(np.uint8)


def _two_level(ram_bytes, promote=True, eviction="lru"):
    """RAM over an unbounded 'remote' tier (pure in-memory, fast)."""
    return StorageHierarchy(
        [RamTier(ram_bytes), RemoteTier(InMemoryRemoteClient())],
        promote_on_hit=promote,
        eviction=eviction,
    )


class TestSpillAndPromote:
    def test_stage_lands_in_top_tier(self):
        h = _two_level(1 << 12)
        report = h.put("a", _arr(256))
        assert report.tier == "ram" and not report.evictions
        assert h.occupancy()["ram"] == 256

    def test_lru_victim_demotes_one_level(self):
        h = _two_level(512, promote=False)
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))
        report = h.put("c", _arr(256, seed=3))
        assert report.tier == "ram"
        assert [(e.key, e.src, e.dst) for e in report.evictions] == [
            ("a", "ram", "remote")
        ]
        # The demoted payload survives bit-identical below.
        data, tier = h.get("a")
        assert tier == "remote"
        np.testing.assert_array_equal(data, _arr(256, seed=1))

    def test_promote_on_hit_restores_ram(self):
        h = _two_level(512, promote=True)
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))
        h.put("c", _arr(256, seed=3))  # a -> remote
        data, tier = h.get("a")
        assert tier == "ram"  # promoted on the way out
        np.testing.assert_array_equal(data, _arr(256, seed=1))
        # Promotion made room by demoting the coldest RAM entry.
        assert h.entries()["ram"] == 2 and h.entries()["remote"] == 1

    def test_promote_off_leaves_entry_down(self):
        h = _two_level(512, promote=False)
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))
        h.put("c", _arr(256, seed=3))
        _, tier = h.get("a")
        assert tier == "remote"
        _, tier = h.get("a")
        assert tier == "remote"  # still there, still down

    def test_lru_get_refreshes_recency(self):
        h = _two_level(512, eviction="lru", promote=False)
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))
        h.get("a")  # a is now hotter than b
        report = h.put("c", _arr(256, seed=3))
        assert report.evictions[0].key == "b"

    def test_fifo_ignores_recency(self):
        h = _two_level(512, eviction="fifo", promote=False)
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))
        h.get("a")
        report = h.put("c", _arr(256, seed=3))
        assert report.evictions[0].key == "a"  # insertion order wins

    def test_drop_off_last_tier(self):
        h = StorageHierarchy([RamTier(512)])
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))
        report = h.put("c", _arr(256, seed=3))
        assert report.evictions == [
            type(report.evictions[0])(key="a", src="ram", dst=DROPPED, nbytes=256)
        ]
        assert h.get("a") == (None, None)

    def test_oversize_payload_skips_to_lower_tier(self):
        h = _two_level(128)
        report = h.put("big", _arr(4096))
        assert report.tier == "remote" and not report.evictions
        assert h.entries()["ram"] == 0

    def test_cascade_through_three_levels(self):
        mid, low = RamTier(256), RamTier(256)
        mid.name, low.name = "mid", "low"  # hierarchy wants distinct names
        h = StorageHierarchy([RamTier(256), mid, low], promote_on_hit=False)
        for i, key in enumerate("abcd"):
            report = h.put(key, _arr(256, seed=i))
        # d pushed c to mid, which pushed b to low, which dropped a.
        moves = [(e.key, e.src, e.dst) for e in report.evictions]
        assert ("c", "ram", "mid") in moves
        assert ("b", "mid", "low") in moves
        assert ("a", "low", DROPPED) in moves

    def test_remove_and_contains(self):
        h = _two_level(256, promote=False)
        h.put("a", _arr(256, seed=1))
        h.put("b", _arr(256, seed=2))  # a demoted
        assert "a" in h and "b" in h
        assert h.remove("a")
        assert "a" not in h and not h.remove("a")

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(16, 64)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_integrity_under_random_churn(self, ops):
        # Model check: whatever sequence of puts lands, every key the
        # hierarchy still claims to hold returns its latest payload
        # bit-identical, from whatever tier it spilled to.
        h = _two_level(128, promote=False)
        model = {}
        for seed, (slot, nbytes) in enumerate(ops):
            key = f"k{slot}"
            data = _arr(nbytes, seed=seed)
            h.put(key, data)
            model[key] = data
        for key, want in model.items():
            if key in h:
                got, tier = h.get(key)
                assert tier in ("ram", "remote")
                np.testing.assert_array_equal(got, want)

    def test_close_releases_everything(self):
        h = _two_level(512)
        h.put("a", _arr(256))
        h.close()
        assert h.get("a") == (None, None)
        h.close()  # idempotent


class TestFromPolicy:
    def test_default_policy_tiers(self):
        with StorageHierarchy.from_policy(StagingPolicy()) as h:
            assert [t.name for t in h.tiers] == ["ram", "disk"]
            assert h.tiers[1].capacity_bytes is None  # unbounded spill

    def test_disk_off(self):
        with StorageHierarchy.from_policy(StagingPolicy(disk_bytes=0)) as h:
            assert [t.name for t in h.tiers] == ["ram"]

    def test_shm_tier_included(self):
        policy = StagingPolicy(shm_bytes=1 << 20, shm_segment_bytes=1 << 18,
                               disk_bytes=0)
        with StorageHierarchy.from_policy(policy) as h:
            assert [t.name for t in h.tiers] == ["ram", "shm"]

    def test_remote_tier_appended(self):
        policy = StagingPolicy(disk_bytes=0)
        client = InMemoryRemoteClient()
        with StorageHierarchy.from_policy(policy, remote=client) as h:
            assert [t.name for t in h.tiers] == ["ram", "remote"]

    def test_spill_roundtrip_through_real_disk(self, tmp_path):
        policy = StagingPolicy(ram_bytes=512, spill_dir=str(tmp_path))
        with StorageHierarchy.from_policy(policy) as h:
            h.put("a", _arr(256, seed=1))
            h.put("b", _arr(256, seed=2))
            h.put("c", _arr(256, seed=3))  # a -> disk
            data, tier = h.get("a")
            assert tier in ("ram", "disk")  # promoted by default
            np.testing.assert_array_equal(data, _arr(256, seed=1))


class TestStagingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            StagingPolicy(ram_bytes=-1)
        with pytest.raises(ValueError):
            StagingPolicy(eviction="random")

    def test_hashable_for_pool_keys(self):
        assert hash(StagingPolicy()) == hash(StagingPolicy())
        assert StagingPolicy() != StagingPolicy(ram_bytes=1)

    @pytest.mark.parametrize("spec,want", [
        ("ram=64M", StagingPolicy(ram_bytes=64 << 20)),
        ("ram=1g,disk=512k", StagingPolicy(ram_bytes=1 << 30,
                                           disk_bytes=512 << 10)),
        ("disk=off", StagingPolicy(disk_bytes=0)),
        ("disk=unbounded", StagingPolicy(disk_bytes=None)),
        ("shm=2M,evict=fifo,promote=off",
         StagingPolicy(shm_bytes=2 << 20, eviction="fifo",
                       promote_on_hit=False)),
        ("dir=/x/y", StagingPolicy(spill_dir="/x/y")),
    ])
    def test_parse(self, spec, want):
        assert parse_staging(spec) == want

    @pytest.mark.parametrize("spec", [
        "ram", "ram=abc", "bogus=1", "evict=random",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_staging(spec)

    @pytest.mark.parametrize("policy", [
        StagingPolicy(),
        StagingPolicy(ram_bytes=1 << 20, disk_bytes=0),
        StagingPolicy(shm_bytes=1 << 20, eviction="fifo",
                      promote_on_hit=False, spill_dir="/tmp/x"),
        StagingPolicy(disk_bytes=123456),
    ])
    def test_format_parse_roundtrip(self, policy):
        # shm_segment_bytes is not part of the spec language; everything
        # else must survive format -> parse unchanged.
        assert parse_staging(format_staging(policy)) == policy

"""Staging through the region layer is bit-identical on every runtime.

The acceptance property of the data layer: routing IIC-to-TEXTURE
chunks through :class:`repro.regions.RegionStore` — including ghost
/overlap reuse and out-of-core spill under a tiny RAM bound — must not
change a single output voxel on any of the four runtimes.
"""

import numpy as np
import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import (
    build_runtime,
    execute_pipeline,
    prepare_pipeline,
    run_pipeline,
)
from repro.pipeline.sequential import transform_disk_dataset
from repro.regions import (
    RegionStore,
    StagingPolicy,
    chunk_extent,
    read_chunk_staged,
)
from repro.storage.dataset import DiskDataset4D, write_dataset

STAGED = StagingPolicy(ram_bytes=64 << 20)


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(18, 16, 6, 4), seed=9))
    root = str(tmp_path_factory.mktemp("regions_ds") / "data")
    write_dataset(vol, root, num_nodes=2)
    params = TextureParams(
        roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "idm"),
        intensity_range=(0.0, 65535.0),
    )
    cfg = AnalysisConfig(texture=params, texture_chunk_shape=(8, 8, 6, 4))
    baseline = transform_disk_dataset(root, cfg)
    return root, cfg, baseline


def _assert_identical(got, baseline, features):
    for name in features:
        np.testing.assert_array_equal(got[name], baseline[name])


class TestSequentialStaging:
    def test_bit_identical_with_overlap_reuse(self, setup):
        root, cfg, baseline = setup
        store = RegionStore.from_policy(STAGED)
        with store:
            got = transform_disk_dataset(root, cfg, region_store=store)
            _assert_identical(got, baseline, cfg.texture.features)
            # Raster order guarantees every chunk after the first
            # resolves its ghost region from a staged neighbour.
            assert store.stats.hits > 0
            assert store.stats.stages > 0

    def test_config_staging_equivalent(self, setup):
        root, cfg, baseline = setup
        from dataclasses import replace

        got = transform_disk_dataset(root, replace(cfg, staging=STAGED))
        _assert_identical(got, baseline, cfg.texture.features)

    def test_out_of_core_spill_bit_identical(self, setup, tmp_path):
        # RAM tier far below the dataset size: staging must spill to
        # disk, keep resolving from there, and still match exactly.
        root, cfg, baseline = setup
        policy = StagingPolicy(ram_bytes=4096, spill_dir=str(tmp_path))
        with RegionStore.from_policy(policy) as store:
            got = transform_disk_dataset(root, cfg, region_store=store)
            _assert_identical(got, baseline, cfg.texture.features)
            occupancy = store.occupancy()
            assert occupancy["ram"] <= 4096
            assert store.stats.evictions > 0  # the bound actually bit
            assert store.stats.drops == 0  # unbounded disk: spill, not loss

    def test_out_of_core_serves_hits_from_disk(self, setup, tmp_path):
        root, cfg, baseline = setup
        policy = StagingPolicy(
            ram_bytes=4096, spill_dir=str(tmp_path), promote_on_hit=False
        )
        with RegionStore.from_policy(policy) as store:
            got = transform_disk_dataset(root, cfg, region_store=store)
            _assert_identical(got, baseline, cfg.texture.features)
            assert store.stats.hits_by_tier.get("disk", 0) > 0


class TestParallelRuntimesStaging:
    @pytest.mark.parametrize("runtime", ["threads", "processes", "distributed"])
    def test_bit_identical(self, setup, runtime):
        root, cfg, baseline = setup
        from dataclasses import replace

        staged_cfg = replace(
            cfg.with_copies(num_texture_copies=2), staging=STAGED
        )
        result = run_pipeline(root, staged_cfg, runtime=runtime)
        _assert_identical(result.volumes, baseline, cfg.texture.features)

    def test_warm_rerun_serves_region_hits(self, setup):
        # Shared PreparedPipeline (the service's warm-pool shape): the
        # second execution finds every chunk staged by the first.
        root, cfg, baseline = setup
        from dataclasses import replace

        prepared = prepare_pipeline(root, replace(cfg, staging=STAGED))
        assert prepared.region_store is not None
        try:
            rt = build_runtime(prepared.graph, runtime="threads")
            with rt:
                first = execute_pipeline(prepared, rt)
                hits_after_first = prepared.region_store.stats.hits
                second = execute_pipeline(prepared, rt)
            _assert_identical(first.volumes, baseline, cfg.texture.features)
            _assert_identical(second.volumes, baseline, cfg.texture.features)
            assert prepared.region_store.stats.hits > hits_after_first
        finally:
            prepared.close()


class TestReadChunkStaged:
    def test_second_read_is_a_pure_hit(self, setup):
        root, cfg, baseline = setup
        from repro.pipeline.builder import plan_chunks

        dataset = DiskDataset4D.open(root)
        chunk = plan_chunks(dataset.shape, cfg)[0]
        with RegionStore.from_policy(STAGED) as store:
            first_buf, first = read_chunk_staged(dataset, chunk, store)
            assert first.read_bytes > 0 and first.hit_fraction == 0.0
            second_buf, second = read_chunk_staged(dataset, chunk, store)
            assert second.read_bytes == 0 and second.planes_read == 0
            assert second.hit_fraction == 1.0
            np.testing.assert_array_equal(first_buf, second_buf)

    def test_neighbour_overlap_partially_covered(self, setup):
        root, cfg, baseline = setup
        from repro.pipeline.builder import plan_chunks

        dataset = DiskDataset4D.open(root)
        chunks = plan_chunks(dataset.shape, cfg)
        # Find a pair of overlapping neighbours (x-adjacent chunks).
        pairs = [
            (a, b)
            for a in chunks for b in chunks
            if a is not b and chunk_extent(a).intersect(chunk_extent(b))
        ]
        assert pairs, "paper config must produce overlapping chunks"
        a, b = pairs[0]
        with RegionStore.from_policy(STAGED) as store:
            full_a = dataset.read_chunk(
                (a.lo[0], a.hi[0]), (a.lo[1], a.hi[1]),
                (a.lo[2], a.hi[2]), (a.lo[3], a.hi[3]),
            )
            full_b = dataset.read_chunk(
                (b.lo[0], b.hi[0]), (b.lo[1], b.hi[1]),
                (b.lo[2], b.hi[2]), (b.lo[3], b.hi[3]),
            )
            buf_a, _ = read_chunk_staged(dataset, a, store)
            np.testing.assert_array_equal(buf_a, full_a)
            buf_b, rep = read_chunk_staged(dataset, b, store)
            np.testing.assert_array_equal(buf_b, full_b)
            # The ghost voxels shared with `a` came from the store.
            assert 0.0 < rep.hit_fraction < 1.0
            assert rep.hit_voxels >= chunk_extent(a).intersect(
                chunk_extent(b)
            ).num_voxels

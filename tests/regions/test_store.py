"""RegionStore: templates, staging, and the ghost-region overlap query."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regions import (
    RamTier,
    RegionExtent,
    RegionStore,
    RegionTemplate,
    StagingPolicy,
    StorageHierarchy,
)

DOMAIN = (24, 24, 6, 4)


def _master(seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 12, size=DOMAIN).astype(np.uint16)


def _store(ram_bytes=1 << 22):
    return RegionStore(StorageHierarchy([RamTier(ram_bytes)]))


@st.composite
def boxes(draw):
    lo = [draw(st.integers(0, d - 1)) for d in DOMAIN]
    hi = [l + draw(st.integers(1, d - l)) for l, d in zip(lo, DOMAIN)]
    return RegionExtent(tuple(lo), tuple(hi))


class TestTemplates:
    def test_register_idempotent(self):
        with _store() as store:
            t = RegionTemplate("t", ndim=4, dtype="uint16")
            assert store.register(t) is store.register(t)
            with pytest.raises(ValueError):
                store.register(RegionTemplate("t", ndim=4, dtype="uint8"))

    def test_unknown_template_rejected(self):
        with _store() as store:
            e = RegionExtent((0,) * 4, (2,) * 4)
            with pytest.raises(KeyError):
                store.stage("nope", e, np.zeros((2,) * 4, dtype=np.uint16))
            with pytest.raises(KeyError):
                store.resolve("nope", e)

    def test_stage_validates_shape_and_dtype(self):
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4, dtype="uint16"))
            e = RegionExtent((0,) * 4, (2,) * 4)
            with pytest.raises(ValueError):
                store.stage("t", e, np.zeros((3,) * 4, dtype=np.uint16))
            with pytest.raises(ValueError):
                store.stage("t", e, np.zeros((2,) * 4, dtype=np.uint8))


class TestStageAndQuery:
    def test_exact_get_roundtrip(self):
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4))
            master = _master()
            e = RegionExtent((2, 2, 0, 0), (10, 10, 4, 2))
            store.stage("t", e, master[e.slices_in(
                RegionExtent((0,) * 4, DOMAIN))])
            hit = store.get("t", e)
            assert hit is not None and hit.tier == "ram"
            assert not hit.data.flags.writeable
            np.testing.assert_array_equal(
                hit.data,
                master[2:10, 2:10, 0:4, 0:2],
            )
            assert ("t", e) in store
            assert store.get("t", RegionExtent((0,) * 4, (2,) * 4)) is None

    def test_stage_copies_by_default(self):
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4))
            e = RegionExtent((0,) * 4, (2,) * 4)
            buf = np.ones((2,) * 4, dtype=np.uint16)
            store.stage("t", e, buf)
            buf[:] = 7  # caller keeps mutating its buffer
            np.testing.assert_array_equal(
                store.get("t", e).data, np.ones((2,) * 4, dtype=np.uint16)
            )

    @given(st.lists(boxes(), min_size=1, max_size=6), boxes())
    @settings(max_examples=60, deadline=None)
    def test_resolve_reconstructs_overlaps_exactly(self, staged, target):
        # The ghost-region property: for any set of staged sub-boxes of
        # one master volume, every resolve hit's overlap_data is
        # bit-identical to the master restricted to that overlap, and
        # the hits are exactly the staged boxes intersecting the target.
        master = _master(seed=42)
        whole = RegionExtent((0,) * 4, DOMAIN)
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4, dtype="uint16"))
            for e in staged:
                store.stage("t", e, master[e.slices_in(whole)])
            hits = store.resolve("t", target)
            want = {e for e in staged if e.intersect(target) is not None}
            assert {h.extent for h in hits} == want
            for h in hits:
                assert h.overlap == h.extent.intersect(target)
                np.testing.assert_array_equal(
                    h.overlap_data, master[h.overlap.slices_in(whole)]
                )

    def test_resolve_counts_hits_and_misses(self):
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4))
            e = RegionExtent((0, 0, 0, 0), (8, 8, 4, 2))
            store.stage("t", e, np.zeros(e.shape, dtype=np.float64))
            far = RegionExtent((16, 16, 4, 2), (20, 20, 6, 4))
            assert store.resolve("t", far) == []
            assert store.resolve("t", e) != []
            s = store.stats
            assert s.stages == 1 and s.misses == 1 and s.hits == 1
            assert s.hits_by_tier == {"ram": 1}
            assert s.stages_by_tier == {"ram": 1}


class TestEvictionVisibility:
    def test_dropped_regions_leave_the_index(self):
        # RAM-only hierarchy sized for one region: staging the second
        # drops the first, and neither get nor resolve may return it.
        e1 = RegionExtent((0, 0, 0, 0), (4, 4, 2, 2))
        e2 = RegionExtent((3, 3, 0, 0), (7, 7, 2, 2))
        nbytes = np.zeros(e1.shape, dtype=np.uint16).nbytes
        store = RegionStore(StorageHierarchy([RamTier(nbytes)]))
        with store:
            store.register(RegionTemplate("t", ndim=4, dtype="uint16"))
            store.stage("t", e1, np.ones(e1.shape, dtype=np.uint16))
            store.stage("t", e2, np.full(e2.shape, 2, dtype=np.uint16))
            assert ("t", e1) not in store
            assert store.get("t", e1) is None
            hits = store.resolve("t", RegionExtent((0,) * 4, (8, 8, 2, 2)))
            assert [h.extent for h in hits] == [e2]
            assert store.stats.drops == 1

    def test_spilled_regions_stay_resolvable(self, tmp_path):
        # With a disk tier below, eviction is demotion, not loss.
        e1 = RegionExtent((0, 0, 0, 0), (4, 4, 2, 2))
        e2 = RegionExtent((3, 3, 0, 0), (7, 7, 2, 2))
        nbytes = np.zeros(e1.shape, dtype=np.uint16).nbytes
        policy = StagingPolicy(ram_bytes=nbytes, spill_dir=str(tmp_path))
        with RegionStore.from_policy(policy) as store:
            store.register(RegionTemplate("t", ndim=4, dtype="uint16"))
            store.stage("t", e1, np.ones(e1.shape, dtype=np.uint16))
            store.stage("t", e2, np.full(e2.shape, 2, dtype=np.uint16))
            hits = store.resolve("t", RegionExtent((0,) * 4, (8, 8, 2, 2)))
            assert {h.extent for h in hits} == {e1, e2}
            assert store.stats.drops == 0

    def test_explicit_evict_and_clear(self):
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4))
            e = RegionExtent((0,) * 4, (2,) * 4)
            store.stage("t", e, np.zeros((2,) * 4))
            assert store.evict("t", e)
            assert not store.evict("t", e)
            store.stage("t", e, np.zeros((2,) * 4))
            store.clear()
            assert store.get("t", e) is None
            assert store.occupancy()["ram"] == 0


class TestSnapshot:
    def test_snapshot_shape(self):
        with _store() as store:
            store.register(RegionTemplate("t", ndim=4))
            e = RegionExtent((0,) * 4, (2,) * 4)
            store.stage("t", e, np.zeros((2,) * 4))
            snap = store.snapshot()
            assert snap["templates"] == ["t"]
            assert snap["regions"] == {"t": 1}
            assert snap["counters"]["stages"] == 1
            assert snap["hierarchy"]["tiers"][0]["name"] == "ram"

"""Per-tier round-trip, capacity and crash-safe-cleanup tests."""

import os
import subprocess

import numpy as np
import pytest

from repro.regions import (
    DiskTier,
    InMemoryRemoteClient,
    RamTier,
    RemoteTier,
    ShmTier,
)


def _payload(shape=(4, 4, 2, 2), dtype=np.uint16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 12, size=shape).astype(dtype)


def _roundtrip(tier, copies_out=True):
    data = _payload()
    assert tier.put("k", data)
    out = tier.get("k")
    assert out is not None
    if copies_out:
        # Tiers that materialize a fresh array hand it back read-only;
        # RamTier returns the stored array (the store freezes payloads
        # before they ever reach a tier).
        assert not out.flags.writeable
    np.testing.assert_array_equal(out, data)
    assert tier.bytes_used == data.nbytes
    tier.remove("k")
    assert tier.get("k") is None
    assert tier.bytes_used == 0
    tier.remove("k")  # missing keys are a no-op


class TestRamTier:
    def test_roundtrip(self):
        _roundtrip(RamTier(), copies_out=False)

    def test_capacity_refusal(self):
        data = _payload()
        tier = RamTier(capacity_bytes=data.nbytes)
        assert tier.put("a", data)
        assert not tier.put("b", data)  # full: refuse, never evict
        assert tier.get("a") is not None and tier.get("b") is None

    def test_overwrite_replaces(self):
        tier = RamTier(capacity_bytes=_payload().nbytes)
        assert tier.put("a", _payload(seed=1))
        assert tier.put("a", _payload(seed=2))  # same key: replace in place
        np.testing.assert_array_equal(tier.get("a"), _payload(seed=2))


class TestDiskTier:
    def test_roundtrip(self, tmp_path):
        tier = DiskTier(root=str(tmp_path))
        try:
            _roundtrip(tier)
        finally:
            tier.close()

    def test_capacity_refusal(self, tmp_path):
        data = _payload()
        tier = DiskTier(capacity_bytes=data.nbytes, root=str(tmp_path))
        try:
            assert tier.put("a", data)
            assert not tier.put("b", data)
        finally:
            tier.close()

    def test_close_removes_session_dir(self, tmp_path):
        tier = DiskTier(root=str(tmp_path))
        tier.put("a", _payload())
        session = tier.session_dir
        assert os.path.isdir(session) and os.listdir(session)
        tier.close()
        assert not os.path.exists(session)
        tier.close()  # idempotent

    def test_stale_session_sweep(self, tmp_path):
        # A session directory left by a dead pid (kill -9 never runs our
        # cleanup) is swept by the next tier construction in the same
        # root; a directory owned by a live pid is left alone.
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        dead = tmp_path / f"spill-{proc.pid}-deadbeef"
        dead.mkdir()
        (dead / "orphan.npy").write_bytes(b"x")
        alive = tmp_path / f"spill-{os.getpid()}-cafebabe"
        alive.mkdir()
        unrelated = tmp_path / "not-a-session"
        unrelated.mkdir()

        tier = DiskTier(root=str(tmp_path))
        try:
            assert not dead.exists()
            assert alive.exists()
            assert unrelated.exists()
        finally:
            tier.close()


class TestShmTier:
    def test_roundtrip_and_no_leaked_segments(self):
        before = {n for n in os.listdir("/dev/shm") if "reproshm" in n}
        tier = ShmTier(capacity_bytes=1 << 20, segment_bytes=1 << 18)
        try:
            _roundtrip(tier)
        finally:
            tier.close()
        after = {n for n in os.listdir("/dev/shm") if "reproshm" in n}
        assert after - before == set()

    def test_refuses_payload_larger_than_slab(self):
        tier = ShmTier(capacity_bytes=1 << 16, segment_bytes=1 << 12)
        try:
            assert not tier.put("big", np.zeros(1 << 13, dtype=np.uint8))
            assert tier.put("small", np.zeros(1 << 10, dtype=np.uint8))
        finally:
            tier.close()

    def test_slab_recycled_after_remove(self):
        # One slab total: the second put only fits if remove() released it.
        tier = ShmTier(capacity_bytes=1 << 12, segment_bytes=1 << 12)
        try:
            a = _payload(shape=(8, 8), seed=3)
            assert tier.put("a", a)
            assert not tier.put("b", a)  # no free slab
            tier.remove("a")
            assert tier.put("b", a)
            np.testing.assert_array_equal(tier.get("b"), a)
        finally:
            tier.close()

    def test_get_survives_slab_reuse(self):
        # get() must copy out of the slab: the array stays valid after
        # the slab is recycled for another region.
        tier = ShmTier(capacity_bytes=1 << 12, segment_bytes=1 << 12)
        try:
            a, b = _payload(shape=(8, 8), seed=4), _payload(shape=(8, 8), seed=5)
            tier.put("a", a)
            out = tier.get("a")
            tier.remove("a")
            tier.put("b", b)
            np.testing.assert_array_equal(out, a)
        finally:
            tier.close()


class TestRemoteTier:
    def test_roundtrip(self):
        client = InMemoryRemoteClient()
        tier = RemoteTier(client)
        _roundtrip(tier)
        assert client.objects == {}  # remove() reached the client

    def test_serializes_through_client(self):
        client = InMemoryRemoteClient()
        tier = RemoteTier(client)
        data = _payload(seed=7)
        tier.put("k", data)
        assert isinstance(client.objects["k"], bytes)
        np.testing.assert_array_equal(tier.get("k"), data)

    def test_dtype_and_shape_preserved(self):
        tier = RemoteTier(InMemoryRemoteClient())
        for dtype in (np.uint8, np.uint16, np.float64):
            data = _payload(shape=(3, 5, 2, 1), dtype=dtype, seed=11)
            tier.put("k", data)
            out = tier.get("k")
            assert out.dtype == data.dtype and out.shape == data.shape
            np.testing.assert_array_equal(out, data)

"""Scenario harness: spec loading, expectation checking, reporting.

The heavy end-to-end scenarios run in CI's ``scenarios`` job via
``tools/run_scenarios.py``; here we cover the harness machinery itself
plus one real (small) scenario per churn kind so a plain ``pytest`` run
still exercises join, drain and crash paths end to end.
"""

import json
import os
import sys

import pytest

from repro.datacutter.faults import (
    CrashAgent,
    DelayBuffers,
    DrainAgent,
    JoinAgent,
)
from repro.scenarios import (
    ScenarioSpec,
    load_scenario,
    load_scenarios,
    run_scenario,
    run_suite,
    write_report,
)
from repro.scenarios.spec import Expectation

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SCENARIO_DIR = os.path.join(REPO_ROOT, "scenarios")

needs_linux = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

#: Small geometry shared by the live tests: a few dozen chunks, enough
#: for churn at ~0.2s offsets without making the suite slow.
SMALL = dict(
    shape=(10, 8, 6, 4),
    chunk_shape=(4, 4, 3, 2),
    texture_copies=3,
    levels=8,
    roi=(3, 3, 3, 2),
)


class TestSpecLoading:
    def test_shipped_suite_loads(self):
        specs = load_scenarios(SCENARIO_DIR)
        names = {s.name for s in specs}
        assert {
            "join_mid_run",
            "drain_under_load",
            "drain_then_crash",
            "join_degraded_link",
            "agent_crash",
            "heterogeneous",
        } <= names
        for s in specs:
            assert s.expect.bit_identical

    def test_shipped_suite_is_self_consistent(self):
        for spec in load_scenarios(SCENARIO_DIR):
            plan = spec.fault_plan()
            if plan is not None:
                # The same validation the runtime applies at startup.
                plan.validate(
                    {"HMP": spec.texture_copies, "IIC": spec.iic_copies},
                    agents=[f"a{i}" for i in range(spec.agents)],
                    elastic=spec.elastic,
                )

    def test_schedule_and_fault_parsing(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "name": "parse_me",
                    "elastic": True,
                    "schedule": [
                        {"action": "join", "at": 0.5},
                        {"action": "drain", "at": 1.0, "agent": 2,
                         "deadline": 9.0},
                    ],
                    "faults": [
                        {"kind": "crash_agent", "agent": 1,
                         "after_buffers": 3},
                    ],
                }
            )
        )
        spec = load_scenario(str(path))
        join, drain = spec.schedule
        assert isinstance(join, JoinAgent) and join.at == 0.5
        assert isinstance(drain, DrainAgent) and drain.deadline == 9.0
        (fault,) = spec.faults
        assert isinstance(fault, CrashAgent) and fault.after_buffers == 3

    def test_unknown_fault_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"name": "x", "faults": [{"kind": "meteor_strike"}]}
            )
        )
        with pytest.raises(ValueError, match="meteor_strike"):
            load_scenario(str(path))

    def test_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "agnets": 3}))
        with pytest.raises(ValueError, match="agnets"):
            load_scenario(str(path))

    def test_join_without_elastic_rejected(self):
        with pytest.raises(ValueError, match="elastic"):
            ScenarioSpec(
                name="x", schedule=[JoinAgent(at=0.1)], elastic=False
            )

    def test_bad_expectation_mode_rejected(self):
        with pytest.raises(ValueError, match="failures"):
            Expectation(failures="shrug")


@needs_linux
class TestScenarioExecution:
    def test_crash_scenario_passes(self):
        spec = ScenarioSpec(
            name="crash_small",
            seed=5,
            agents=3,
            faults=[CrashAgent(agent=1, after_buffers=1)],
            expect=Expectation(min_reroutes=1, failures="recovered"),
            **SMALL,
        )
        res = run_scenario(spec)
        assert res.error is None
        assert res.passed, [c.to_dict() for c in res.checks]
        assert res.counters["reroutes"] >= 1

    def test_drain_scenario_attributes_churn(self):
        spec = ScenarioSpec(
            name="drain_small",
            seed=11,
            agents=3,
            schedule=[DrainAgent(at=0.2, agent=1, deadline=60.0)],
            faults=[
                # Stretch the run so the 0.2s drain lands mid-flight.
                DelayBuffers(filter_name="HMP", delay=0.03)
            ],
            expect=Expectation(
                drained=1, max_reroutes=0, failures="none"
            ),
            **SMALL,
        )
        res = run_scenario(spec)
        assert res.error is None
        assert res.passed, [c.to_dict() for c in res.checks]
        assert res.counters["drained_agents"] == ["127.0.0.1#1"]

    def test_failed_expectation_fails_the_scenario(self):
        # Expect a drain that never happens: the run itself is clean but
        # the scenario must be reported as failed.
        spec = ScenarioSpec(
            name="expect_mismatch",
            seed=3,
            agents=3,
            expect=Expectation(drained=1),
            **SMALL,
        )
        res = run_scenario(spec)
        assert res.error is None
        assert not res.passed
        failing = [c.name for c in res.checks if not c.ok]
        assert failing == ["drained"]

    def test_report_round_trip(self, tmp_path):
        spec = ScenarioSpec(name="tiny", seed=1, agents=2, **SMALL)
        results = run_suite([spec], verbose=False)
        path = str(tmp_path / "report.json")
        report = write_report(results, path)
        assert report["total"] == 1
        on_disk = json.loads(open(path).read())
        assert on_disk["passed"] + on_disk["failed"] == 1
        (entry,) = on_disk["scenarios"]
        assert entry["scenario"]["name"] == "tiny"
        assert "counters" in entry and "checks" in entry

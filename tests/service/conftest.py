"""Shared fixtures for the analysis-service suite: one small dataset."""

import numpy as np
import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.storage.dataset import write_dataset

SHAPE = (12, 10, 6, 3)
ROI = (3, 3, 3, 2)
LEVELS = 8


@pytest.fixture(scope="package")
def dataset_root(tmp_path_factory):
    volume = generate_phantom(PhantomConfig(shape=SHAPE, seed=7))
    root = str(tmp_path_factory.mktemp("svc") / "data")
    write_dataset(volume, root, num_nodes=2)
    return root


@pytest.fixture(scope="package")
def second_dataset_root(tmp_path_factory):
    volume = generate_phantom(PhantomConfig(shape=SHAPE, seed=13))
    root = str(tmp_path_factory.mktemp("svc2") / "data")
    write_dataset(volume, root, num_nodes=2)
    return root


#: TextureParams fields make_config routes into the texture dataclass.
_TEXTURE_FIELDS = (
    "levels", "distance", "intensity_range", "sparse", "kernel", "roi_shape",
)


def make_config(features=("asm", "idm"), **kwargs):
    texture_kwargs = {
        k: kwargs.pop(k) for k in _TEXTURE_FIELDS if k in kwargs
    }
    texture_kwargs.setdefault("roi_shape", ROI)
    texture_kwargs.setdefault("levels", LEVELS)
    texture_kwargs.setdefault("intensity_range", (0.0, 65535.0))
    kwargs.setdefault("texture_chunk_shape", (8, 8, 4, 3))
    return AnalysisConfig(
        texture=TextureParams(features=tuple(features), **texture_kwargs),
        **kwargs,
    )


@pytest.fixture
def config():
    return make_config()


def assert_volumes_equal(got, want):
    assert sorted(got) == sorted(want)
    for name in want:
        assert np.array_equal(got[name], want[name]), name

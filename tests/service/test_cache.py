"""ResultCache + volume fingerprinting: keys, LRU bounds, invalidation."""

import os

import numpy as np
import pytest

from repro.filters.messages import TextureParams
from repro.service.cache import ResultCache, result_key, volume_fingerprint


def params(**kw):
    kw.setdefault("roi_shape", (3, 3, 3, 2))
    kw.setdefault("levels", 8)
    kw.setdefault("features", ("asm",))
    return TextureParams(**kw)


class TestResultKey:
    def test_includes_every_numeric_determinant(self):
        base = result_key("h", params(), "asm")
        assert result_key("h2", params(), "asm") != base
        assert result_key("h", params(levels=16), "asm") != base
        assert result_key("h", params(roi_shape=(5, 5, 5, 3)), "asm") != base
        assert result_key("h", params(distance=2), "asm") != base
        assert (
            result_key("h", params(intensity_range=(0.0, 4095.0)), "asm")
            != base
        )
        assert result_key("h", params(), "idm") != base

    def test_excludes_bit_identical_knobs(self):
        # Variant, kernel, sparse mode and chunking are pinned
        # bit-identical by the conformance suites, so they must share
        # cache entries rather than fragment them.
        assert result_key("h", params(sparse=True), "asm") == result_key(
            "h", params(sparse=False), "asm"
        )
        assert result_key("h", params(kernel="reference"), "asm") == result_key(
            "h", params(), "asm"
        )
        assert result_key("h", params(packet_fraction=0.5), "asm") == result_key(
            "h", params(), "asm"
        )


class TestFingerprint:
    def test_stable_for_unchanged_dataset(self, dataset_root):
        assert volume_fingerprint(dataset_root) == volume_fingerprint(
            dataset_root
        )

    def test_differs_between_datasets(self, dataset_root, second_dataset_root):
        assert volume_fingerprint(dataset_root) != volume_fingerprint(
            second_dataset_root
        )

    def test_changes_when_bytes_change(self, tmp_path):
        root = tmp_path / "ds"
        root.mkdir()
        f = root / "index.json"
        f.write_bytes(b"abc")
        before = volume_fingerprint(str(root))
        f.write_bytes(b"abd")
        os.utime(f, ns=(1, 1))  # defeat the (size, mtime) memo shortcut
        assert volume_fingerprint(str(root)) != before

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            volume_fingerprint(str(tmp_path))


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(max_bytes=1 << 20)
        assert cache.get("k") is None
        cache.put("k", np.ones((4, 4)))
        hit = cache.get("k")
        assert hit is not None and np.array_equal(hit, np.ones((4, 4)))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_entries_come_back_read_only(self):
        cache = ResultCache()
        cache.put("k", np.zeros(8))
        vol = cache.get("k")
        with pytest.raises(ValueError):
            vol[0] = 1.0

    def test_lru_eviction_by_bytes(self):
        one_kb = np.zeros(128)  # 1024 bytes of float64
        cache = ResultCache(max_bytes=3 * one_kb.nbytes)
        for key in ("a", "b", "c"):
            cache.put(key, one_kb)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("d", one_kb)
        assert "b" not in cache and "a" in cache
        assert cache.stats()["evictions"] == 1
        assert cache.bytes_used <= cache.max_bytes

    def test_oversized_entry_not_admitted(self):
        cache = ResultCache(max_bytes=64)
        cache.put("big", np.zeros(1024))
        assert "big" not in cache and len(cache) == 0

    def test_replacement_updates_bytes(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("k", np.zeros(1024))
        cache.put("k", np.zeros(16))
        assert cache.bytes_used == np.zeros(16).nbytes
        assert len(cache) == 1

"""ResultCache disk spill: demote past the RAM bound instead of dropping."""

import os

import numpy as np
import pytest

from repro.service.cache import ResultCache


def _vol(nbytes, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(nbytes // 8)  # float64


class TestSpill:
    def test_evicted_entries_demote_to_disk(self, tmp_path):
        cache = ResultCache(max_bytes=2048, spill_dir=str(tmp_path))
        try:
            a, b, c = _vol(1024, 1), _vol(1024, 2), _vol(1024, 3)
            cache.put("a", a)
            cache.put("b", b)
            cache.put("c", c)  # displaces a to disk
            assert cache.stats()["spills"] == 1
            assert "a" in cache and len(cache) == 3
            assert cache.bytes_used <= 2048
            assert cache.disk_bytes_used == 1024
            np.testing.assert_array_equal(cache.get("a"), a)
        finally:
            cache.close()

    def test_disk_hit_promotes_back_to_ram(self, tmp_path):
        cache = ResultCache(max_bytes=2048, spill_dir=str(tmp_path))
        try:
            cache.put("a", _vol(1024, 1))
            cache.put("b", _vol(1024, 2))
            cache.put("c", _vol(1024, 3))  # a -> disk
            got = cache.get("a")  # promote; coldest RAM entry spills down
            assert got is not None
            stats = cache.stats()
            assert stats["disk_hits"] == 1 and stats["hits"] == 1
            assert stats["disk_entries"] == 1  # b took a's place on disk
            np.testing.assert_array_equal(cache.get("b"), _vol(1024, 2))
        finally:
            cache.close()

    def test_oversize_entry_goes_straight_to_disk(self, tmp_path):
        cache = ResultCache(max_bytes=512, spill_dir=str(tmp_path))
        try:
            big = _vol(4096, 5)
            cache.put("big", big)
            stats = cache.stats()
            assert stats["entries"] == 0 and stats["disk_entries"] == 1
            assert cache.puts == 1
            np.testing.assert_array_equal(cache.get("big"), big)
        finally:
            cache.close()

    def test_bounded_spill_drops_when_full(self, tmp_path):
        cache = ResultCache(
            max_bytes=1024, spill_dir=str(tmp_path), spill_bytes=1024
        )
        try:
            cache.put("a", _vol(1024, 1))
            cache.put("b", _vol(1024, 2))  # a -> disk (fills spill budget)
            cache.put("c", _vol(1024, 3))  # b -> disk, displacing a for good
            assert "a" not in cache
            assert "b" in cache and "c" in cache
            assert cache.disk_bytes_used <= 1024
        finally:
            cache.close()

    def test_put_replaces_spilled_copy(self, tmp_path):
        cache = ResultCache(max_bytes=1024, spill_dir=str(tmp_path))
        try:
            cache.put("a", _vol(1024, 1))
            cache.put("b", _vol(1024, 2))  # a -> disk
            fresh = _vol(512, 9)
            cache.put("a", fresh)  # must supersede the disk copy
            np.testing.assert_array_equal(cache.get("a"), fresh)
            assert len(cache) == 2
        finally:
            cache.close()

    def test_clear_covers_disk_entries(self, tmp_path):
        cache = ResultCache(max_bytes=1024, spill_dir=str(tmp_path))
        try:
            cache.put("a", _vol(1024, 1))
            cache.put("b", _vol(1024, 2))
            cache.clear()
            assert len(cache) == 0
            assert cache.disk_bytes_used == 0
            assert cache.get("a") is None and cache.get("b") is None
        finally:
            cache.close()

    def test_close_removes_spill_session_dir(self, tmp_path):
        cache = ResultCache(max_bytes=1024, spill_dir=str(tmp_path))
        cache.put("a", _vol(1024, 1))
        cache.put("b", _vol(1024, 2))  # a -> disk
        sessions = [d for d in os.listdir(tmp_path) if d.startswith("spill-")]
        assert sessions
        cache.close()
        assert not os.path.exists(os.path.join(str(tmp_path), sessions[0]))
        cache.close()  # idempotent
        # RAM entries survive close; only the spill tier is gone.
        assert cache.get("b") is not None
        assert "a" not in cache


class TestLegacySemantics:
    """Spill off: byte-for-byte the pre-spill cache behaviour."""

    def test_oversize_refused(self):
        cache = ResultCache(max_bytes=512)
        cache.put("big", _vol(4096))
        assert len(cache) == 0 and cache.puts == 0
        assert cache.get("big") is None

    def test_eviction_drops(self):
        cache = ResultCache(max_bytes=1024)
        cache.put("a", _vol(1024, 1))
        cache.put("b", _vol(1024, 2))
        assert "a" not in cache and "b" in cache
        assert cache.evictions == 1
        stats = cache.stats()
        assert not stats["spill_enabled"]
        assert stats["spills"] == 0 and stats["disk_entries"] == 0

    def test_spill_bytes_zero_means_off(self):
        cache = ResultCache(max_bytes=512, spill_bytes=0)
        assert not cache.stats()["spill_enabled"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=-1)
        with pytest.raises(ValueError):
            ResultCache(spill_bytes=-1)

"""CLI surface of the service: ``repro serve`` / ``repro submit``."""

import pytest

from repro.cli import build_parser, main
from repro.service import AnalysisService, ServiceConfig, ServiceServer


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7461
        assert args.workers == 2
        assert args.cache_mb == 256
        assert args.weights == []

    def test_serve_weights(self):
        args = build_parser().parse_args(
            ["serve", "--weights", "clinical=3", "batch=1"]
        )
        assert args.weights == ["clinical=3", "batch=1"]

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "ds"])
        assert args.connect == "127.0.0.1:7461"
        assert args.tenant == "default"
        assert args.runtime == "threads"
        assert not args.no_wait

    def test_submit_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])


class TestSubmitCommand:
    @pytest.fixture
    def server(self, dataset_root):
        with AnalysisService(ServiceConfig(workers=1)) as service:
            with ServiceServer(service, port=0) as srv:
                yield srv

    def test_submit_waits_and_prints_volumes(self, server, dataset_root,
                                             capsys):
        rc = main([
            "submit", dataset_root,
            "--connect", f"127.0.0.1:{server.port}",
            "--features", "asm", "idm",
            "--levels", "8", "--roi", "3", "3", "3", "2",
            "--intensity-max", "65535",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "done in" in out
        assert "asm" in out and "idm" in out

    def test_submit_no_wait_prints_job_id(self, server, dataset_root, capsys):
        rc = main([
            "submit", dataset_root,
            "--connect", f"127.0.0.1:{server.port}",
            "--features", "asm",
            "--levels", "8", "--roi", "3", "3", "3", "2",
            "--no-wait",
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip().startswith("j-")

    def test_submit_rejected_dataset(self, server, capsys):
        rc = main([
            "submit", "/nonexistent",
            "--connect", f"127.0.0.1:{server.port}",
        ])
        assert rc == 1
        assert "rejected" in capsys.readouterr().err

    def test_submit_unreachable_service(self, capsys):
        rc = main(["submit", "ds", "--connect", "127.0.0.1:1"])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_bad_weights_spec(self, capsys):
        rc = main(["serve", "--weights", "oops"])
        assert rc == 2
        assert "bad --weights" in capsys.readouterr().err

"""FairQueue: admission control and weighted fair ordering."""

import pytest

from repro.service.fair_queue import AdmissionError, FairQueue
from repro.service.jobs import AnalysisRequest, JobHandle, JobStatus


def job(tenant, n):
    req = AnalysisRequest(dataset_root="/nonexistent", tenant=tenant)
    return JobHandle(f"{tenant}-{n}", req)


def push_n(q, tenant, n):
    jobs = [job(tenant, i) for i in range(n)]
    for j in jobs:
        q.push(j)
    return jobs


class TestAdmission:
    def test_rejects_beyond_bound_with_reason(self):
        q = FairQueue(max_queued=2)
        push_n(q, "a", 2)
        with pytest.raises(AdmissionError) as exc:
            q.push(job("a", 99))
        assert "saturated" in str(exc.value)
        assert exc.value.reason == str(exc.value)
        assert q.depth() == 2

    def test_rejects_after_close(self):
        q = FairQueue()
        q.close()
        with pytest.raises(AdmissionError) as exc:
            q.push(job("a", 0))
        assert "shut down" in str(exc.value)

    def test_capacity_frees_on_pop(self):
        q = FairQueue(max_queued=1)
        q.push(job("a", 0))
        q.pop(timeout=1)
        q.push(job("a", 1))  # does not raise


class TestFairness:
    def test_single_tenant_is_fifo(self):
        q = FairQueue()
        jobs = push_n(q, "a", 5)
        popped = [q.pop(timeout=1) for _ in range(5)]
        assert popped == jobs

    def test_weighted_interleave_under_saturation(self):
        # Tenant a (weight 2) finish tags: .5 1 1.5 2 2.5 3
        # Tenant b (weight 1) finish tags:  1 2 3 4 5 6
        # Merged (ties to the earlier-registered tenant):
        #   a a b a a b a a b b b b
        q = FairQueue(weights={"a": 2.0, "b": 1.0})
        push_n(q, "a", 6)
        push_n(q, "b", 6)
        order = [q.pop(timeout=1).tenant for _ in range(12)]
        assert order == ["a", "a", "b", "a", "a", "b", "a", "a", "b",
                         "b", "b", "b"]

    def test_idle_tenant_not_rewarded_with_backlog_priority(self):
        # A tenant that sat idle while the clock advanced starts at the
        # current virtual time, not at zero.
        q = FairQueue()
        push_n(q, "a", 3)
        for _ in range(3):
            q.pop(timeout=1)
        a4 = job("a", 3)
        late = job("late", 0)
        q.push(a4)
        q.push(late)
        first = q.pop(timeout=1)
        assert first is a4  # both start at the clock; FIFO by arrival

    def test_depths_and_stats(self):
        q = FairQueue(weights={"a": 2.0})
        push_n(q, "a", 2)
        push_n(q, "b", 1)
        assert q.depths() == {"a": 2, "b": 1}
        stats = q.stats()
        assert stats["depth"] == 3
        assert stats["per_tenant"]["a"]["weight"] == 2.0


class TestRemovalAndBatching:
    def test_pop_timeout_returns_none(self):
        q = FairQueue()
        assert q.pop(timeout=0.01) is None

    def test_cancel_removes_queued_job(self):
        q = FairQueue()
        jobs = push_n(q, "a", 3)
        assert jobs[1].cancel()
        assert jobs[1].status == JobStatus.CANCELLED
        remaining = [q.pop(timeout=1) for _ in range(2)]
        assert remaining == [jobs[0], jobs[2]]
        assert q.depth() == 0

    def test_take_matching_respects_limit_and_fair_order(self):
        q = FairQueue(weights={"a": 2.0, "b": 1.0})
        a_jobs = push_n(q, "a", 2)
        b_jobs = push_n(q, "b", 2)
        taken = q.take_matching(lambda j: True, limit=3)
        # Finish-tag order: a0 (.5), a1 (1.0), b0 (1.0 — later tenant).
        assert taken == [a_jobs[0], a_jobs[1], b_jobs[0]]
        assert q.pop(timeout=1) is b_jobs[1]

    def test_drain_empties_everything(self):
        q = FairQueue()
        jobs = push_n(q, "a", 3)
        assert set(q.drain()) == set(jobs)
        assert q.depth() == 0

"""Satellite 3: N parallel service jobs over one shared warm pool are
bit-identical to N sequential one-shot ``run_pipeline`` calls — with and
without fault injection, across runtimes."""

import numpy as np
import pytest

from repro.datacutter.faults import FaultPlan
from repro.pipeline.run import run_pipeline
from repro.service import AnalysisRequest, AnalysisService, ServiceConfig
from repro.service.pool import RuntimeProfile

from .conftest import assert_volumes_equal, make_config


def split_config(**kwargs):
    # The split variant with >= 2 HCC copies gives crash faults a
    # surviving copy to reroute to.
    return make_config(
        variant="split", num_hcc_copies=2, num_hpc_copies=1, **kwargs
    )


def submit_n(svc, dataset_root, config, n, **kwargs):
    return [
        svc.submit(AnalysisRequest(dataset_root, config, **kwargs))
        for _ in range(n)
    ]


class TestParallelIdentity:
    def test_parallel_jobs_match_sequential_runs(self, dataset_root):
        config = make_config(("asm", "correlation", "idm"))
        sequential = [run_pipeline(dataset_root, config).volumes
                      for _ in range(4)]
        with AnalysisService(ServiceConfig(workers=3)) as svc:
            jobs = submit_n(svc, dataset_root, config, 4,
                            use_cache=False, batchable=False)
            parallel = [j.result(timeout=300).volumes for j in jobs]
        for seq, par in zip(sequential, parallel):
            assert_volumes_equal(par, seq)
        # Sequential runs are themselves deterministic, so one baseline
        # comparison per job suffices — but assert it explicitly.
        for seq in sequential[1:]:
            assert_volumes_equal(seq, sequential[0])

    def test_mixed_configs_share_the_pool(self, dataset_root,
                                          second_dataset_root):
        config_a = make_config(("asm",))
        config_b = make_config(("idm",), distance=2)
        base_a = run_pipeline(dataset_root, config_a).volumes
        base_b = run_pipeline(second_dataset_root, config_b).volumes
        with AnalysisService(ServiceConfig(workers=2)) as svc:
            jobs_a = submit_n(svc, dataset_root, config_a, 2,
                              use_cache=False, batchable=False)
            jobs_b = submit_n(svc, second_dataset_root, config_b, 2,
                              use_cache=False, batchable=False)
            for j in jobs_a:
                assert_volumes_equal(j.result(timeout=300).volumes, base_a)
            for j in jobs_b:
                assert_volumes_equal(j.result(timeout=300).volumes, base_b)
            assert svc.pool.stats()["builds"] == 2
            assert svc.pool.stats()["reuses"] == 2

    @pytest.mark.parametrize("runtime", ["threads", "processes"])
    def test_faulted_jobs_recover_bit_identical(self, dataset_root, runtime):
        config = split_config()
        clean = run_pipeline(dataset_root, config).volumes
        # One plan object per job: plans are keyed by identity in the
        # pool, so each faulted job builds (and poisons nothing of) its
        # own entry while clean jobs share the warm one.
        profile = RuntimeProfile(runtime=runtime, max_queue=16)
        with AnalysisService(ServiceConfig(workers=2)) as svc:
            faulted = [
                svc.submit(AnalysisRequest(
                    dataset_root, config, profile=profile,
                    faults=FaultPlan().crash_copy(
                        "HCC", copy_index=0, after_buffers=0
                    ),
                ))
                for _ in range(2)
            ]
            witness = svc.submit(AnalysisRequest(
                dataset_root, config, profile=profile,
                use_cache=False, batchable=False,
            ))
            for job in faulted + [witness]:
                assert_volumes_equal(job.result(timeout=600).volumes, clean)

    def test_faulted_jobs_never_batch_or_cache(self, dataset_root):
        config = split_config()
        plan = FaultPlan().crash_copy("HCC", copy_index=0, after_buffers=0)
        with AnalysisService(ServiceConfig(workers=1)) as svc:
            faulted = svc.submit(AnalysisRequest(
                dataset_root, config, faults=plan,
            ))
            result = faulted.result(timeout=600)
            assert result.batch_size == 1
            assert result.cached == ()
            # Nothing the faulted run produced may land in the cache.
            assert svc.cache.stats()["puts"] == 0

    def test_unrecoverable_fault_fails_only_its_job(self, dataset_root):
        from repro.service import JobError

        config = split_config()
        clean = run_pipeline(dataset_root, config).volumes
        # Crash every HCC copy: no survivor to reroute to.
        plan = (FaultPlan()
                .crash_copy("HCC", copy_index=0, after_buffers=0, hard=True)
                .crash_copy("HCC", copy_index=1, after_buffers=0, hard=True))
        with AnalysisService(ServiceConfig(workers=1)) as svc:
            doomed = svc.submit(AnalysisRequest(
                dataset_root, config, faults=plan,
            ))
            follower = svc.submit(AnalysisRequest(
                dataset_root, config, use_cache=False, batchable=False,
            ))
            with pytest.raises(JobError):
                doomed.result(timeout=600)
            assert_volumes_equal(follower.result(timeout=600).volumes, clean)
            # The poisoned entry was discarded, not reused.
            assert svc.pool.stats()["discards"] == 1

"""RuntimePool: build-once reuse, lease serialization, poisoning, LRU."""

import threading

import pytest

from repro.pipeline.run import execute_pipeline
from repro.service.pool import RuntimePool, RuntimeProfile

from .conftest import make_config


class TestRuntimeProfile:
    def test_rejects_unknown_runtime(self):
        with pytest.raises(ValueError):
            RuntimeProfile(runtime="gpu")

    def test_hosts_normalized_to_tuple(self):
        prof = RuntimeProfile(runtime="distributed", hosts=["h1", "h2"])
        assert prof.hosts == ("h1", "h2")
        assert hash(prof)  # stays usable as (part of) a pool key

    def test_warm_shm_detection(self):
        assert RuntimeProfile(runtime="processes", transport="shm").warm_shm
        assert not RuntimeProfile(runtime="processes").warm_shm
        assert not RuntimeProfile().warm_shm


class TestLeasing:
    def test_same_key_builds_once(self, dataset_root, config):
        with RuntimePool() as pool:
            for _ in range(3):
                with pool.lease(dataset_root, config) as lease:
                    result = execute_pipeline(lease.prepared, lease.runtime)
                    assert set(result.volumes) == {"asm", "idm"}
            assert pool.stats()["builds"] == 1
            assert pool.stats()["reuses"] == 2

    def test_distinct_configs_build_distinct_entries(self, dataset_root):
        with RuntimePool() as pool:
            with pool.lease(dataset_root, make_config(("asm",))):
                pass
            with pool.lease(dataset_root, make_config(("idm",))):
                pass
            assert pool.stats()["builds"] == 2
            assert len(pool) == 2

    def test_lease_serializes_per_entry(self, dataset_root, config):
        with RuntimePool() as pool:
            order = []
            with pool.lease(dataset_root, config):
                t = threading.Thread(
                    target=lambda: (
                        pool.lease(dataset_root, config).__exit__(None, None, None),
                        order.append("second"),
                    )
                )
                with pool.lease(dataset_root, make_config(("idm",))):
                    pass  # a different entry leases fine meanwhile
                t.start()
                t.join(timeout=0.2)
                assert t.is_alive()  # blocked on the held lease
                order.append("first")
            t.join(timeout=5)
            assert order == ["first", "second"]

    def test_reused_runtime_stays_bit_identical(self, dataset_root, config):
        with RuntimePool() as pool:
            with pool.lease(dataset_root, config) as lease:
                first = execute_pipeline(lease.prepared, lease.runtime)
            with pool.lease(dataset_root, config) as lease:
                second = execute_pipeline(lease.prepared, lease.runtime)
        import numpy as np

        for name in first.volumes:
            assert np.array_equal(first.volumes[name], second.volumes[name])


class TestPoisoning:
    def test_failed_lease_discards_entry(self, dataset_root, config):
        pool = RuntimePool()
        with pytest.raises(RuntimeError, match="boom"):
            with pool.lease(dataset_root, config):
                raise RuntimeError("boom")
        assert len(pool) == 0
        assert pool.stats()["discards"] == 1
        # The next lease rebuilds rather than reusing wedged state.
        with pool.lease(dataset_root, config) as lease:
            execute_pipeline(lease.prepared, lease.runtime)
        assert pool.stats()["builds"] == 2
        pool.close()

    def test_explicit_poison(self, dataset_root, config):
        pool = RuntimePool()
        with pool.lease(dataset_root, config) as lease:
            lease.poison()
        assert len(pool) == 0
        pool.close()


class TestEvictionAndLifecycle:
    def test_lru_eviction_over_capacity(self, dataset_root):
        with RuntimePool(max_entries=2) as pool:
            features = (("asm",), ("idm",), ("asm", "idm"))
            for feats in features:
                with pool.lease(dataset_root, make_config(feats)):
                    pass
            assert len(pool) == 2
            assert pool.stats()["evictions"] == 1
            # The oldest entry ("asm") went; the newest two remained.
            with pool.lease(dataset_root, make_config(("asm", "idm"))):
                pass
            assert pool.stats()["reuses"] == 1

    def test_close_rejects_new_leases(self, dataset_root, config):
        pool = RuntimePool()
        with pool.lease(dataset_root, config):
            pass
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.lease(dataset_root, config)

    def test_shm_profile_owns_a_warm_pool(self, dataset_root, config):
        import glob

        prof = RuntimeProfile(
            runtime="processes", transport="shm", max_queue=16,
            shm_segments=4, shm_segment_bytes=1 << 20,
        )
        with RuntimePool() as pool:
            with pool.lease(dataset_root, config, profile=prof) as lease:
                assert lease.runtime.shm_pool is not None
                execute_pipeline(lease.prepared, lease.runtime)
            # Warm: the same ShmPool object survives between leases.
            with pool.lease(dataset_root, config, profile=prof) as lease:
                pool_obj = lease.runtime.shm_pool
                execute_pipeline(lease.prepared, lease.runtime)
            assert pool.stats()["builds"] == 1
        assert glob.glob("/dev/shm/reproshm*") == []
        assert pool_obj is not None

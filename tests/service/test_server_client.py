"""ServiceServer + ServiceClient over a loopback socket."""

import numpy as np
import pytest

from repro.pipeline.run import run_pipeline
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceServer,
)
from repro.service.server import request_from_payload

from .conftest import LEVELS, ROI, make_config


@pytest.fixture
def served(dataset_root):
    with AnalysisService(ServiceConfig(workers=1)) as service:
        with ServiceServer(service, port=0) as server:
            with ServiceClient(port=server.port) as client:
                yield service, server, client


def submit_payload(client, dataset_root, **overrides):
    payload = dict(
        dataset=dataset_root,
        features=["asm", "idm"],
        roi=list(ROI),
        levels=LEVELS,
        intensity_range=[0.0, 65535.0],
    )
    payload.update(overrides)
    return client.submit(**payload)


class TestProtocol:
    def test_ping(self, served):
        _, _, client = served
        assert client.ping()

    def test_submit_result_roundtrip(self, served, dataset_root):
        _, _, client = served
        job_id = submit_payload(client, dataset_root)
        assert job_id.startswith("j-")
        resp = client.result(job_id, timeout=300, arrays=True)
        expected = run_pipeline(dataset_root, make_config()).volumes
        for name, vol in expected.items():
            assert np.array_equal(resp["volumes"][name], vol), name
        assert client.status(job_id) == "done"

    def test_summaries_carry_checksums(self, served, dataset_root):
        _, _, client = served
        job_id = submit_payload(client, dataset_root)
        resp = client.result(job_id, timeout=300, arrays=False)
        entry = resp["volumes"]["asm"]
        assert set(entry) >= {"shape", "dtype", "min", "max", "mean", "sha256"}
        assert "data" not in entry
        import hashlib

        expected = run_pipeline(dataset_root, make_config()).volumes["asm"]
        want = hashlib.sha256(
            np.ascontiguousarray(expected).tobytes()
        ).hexdigest()
        assert entry["sha256"] == want

    def test_stats_and_cache_visible_over_wire(self, served, dataset_root):
        _, _, client = served
        job_id = submit_payload(client, dataset_root)
        client.result(job_id, timeout=300)
        dup = submit_payload(client, dataset_root)
        resp = client.result(dup, timeout=300)
        assert resp["cached"] == ["asm", "idm"]
        stats = client.stats()
        assert stats["cache"]["hits"] >= 2
        assert stats["pool"]["builds"] == 1

    def test_cancel_over_wire(self, served, dataset_root):
        _, _, client = served
        blocker = submit_payload(client, dataset_root, use_cache=False,
                                 batchable=False)
        victim = submit_payload(client, dataset_root, use_cache=False,
                                batchable=False)
        client.cancel(victim)  # may race the worker; must not error
        client.result(blocker, timeout=300)


class TestErrors:
    def test_unknown_op_rejected(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as exc:
            client._rpc({"op": "frobnicate"})
        assert exc.value.kind == "invalid"

    def test_unknown_job_rejected(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError):
            client.status("j-424242")

    def test_bad_dataset_rejected(self, served):
        _, _, client = served
        with pytest.raises(ServiceClientError) as exc:
            client.submit(dataset="/nonexistent", features=["asm"])
        assert exc.value.kind == "invalid"

    def test_unknown_payload_field_rejected(self, served, dataset_root):
        _, _, client = served
        with pytest.raises(ServiceClientError, match="unknown request fields"):
            client.submit(dataset=dataset_root, bogus=1)

    def test_result_timeout_reports_status(self, served, dataset_root):
        _, _, client = served
        blockers = [
            submit_payload(client, dataset_root, use_cache=False,
                           batchable=False)
            for _ in range(3)
        ]
        queued = submit_payload(client, dataset_root, use_cache=False,
                                batchable=False)
        with pytest.raises(ServiceClientError) as exc:
            client.result(queued, timeout=0.0)
        assert exc.value.kind == "timeout"
        assert exc.value.response["status"] in ("queued", "running")
        for job_id in blockers + [queued]:
            client.result(job_id, timeout=300)


class TestPayloadParsing:
    def test_full_payload(self, dataset_root):
        req = request_from_payload({
            "dataset": dataset_root,
            "tenant": "alice",
            "features": ["asm"],
            "levels": 16,
            "roi": [3, 3, 3, 2],
            "distance": 2,
            "intensity_range": [0, 4095],
            "runtime": "processes",
            "transport": "shm",
            "use_cache": False,
        })
        assert req.tenant == "alice"
        assert req.config.texture.levels == 16
        assert req.config.texture.distance == 2
        assert req.profile.runtime == "processes"
        assert req.profile.transport == "shm"
        assert not req.use_cache

    def test_dataset_required(self):
        with pytest.raises(ValueError, match="dataset"):
            request_from_payload({"features": ["asm"]})

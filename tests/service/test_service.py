"""AnalysisService end-to-end: caching, batching, fairness, admission."""

import numpy as np
import pytest

from repro.pipeline.run import run_pipeline
from repro.service import (
    AdmissionError,
    AnalysisRequest,
    AnalysisService,
    JobError,
    JobStatus,
    ServiceConfig,
)

from .conftest import assert_volumes_equal, make_config


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    return AnalysisService(ServiceConfig(**kwargs))


@pytest.fixture(scope="module")
def baseline(dataset_root):
    return run_pipeline(dataset_root, make_config()).volumes


class TestBasics:
    def test_result_bit_identical_to_run_pipeline(self, dataset_root, baseline):
        with make_service() as svc:
            job = svc.submit(AnalysisRequest(dataset_root, make_config()))
            result = job.result(timeout=120)
            assert_volumes_equal(result.volumes, baseline)
            assert job.status == JobStatus.DONE
            assert svc.status(job.id) == JobStatus.DONE

    def test_submit_with_kwargs(self, dataset_root, baseline):
        with make_service() as svc:
            job = svc.submit(dataset_root=dataset_root, config=make_config())
            assert_volumes_equal(job.result(timeout=120).volumes, baseline)

    def test_rejects_non_volume_outputs(self, dataset_root, tmp_path):
        with make_service() as svc:
            with pytest.raises(ValueError, match="volumes"):
                svc.submit(AnalysisRequest(
                    dataset_root,
                    make_config(output="uso", output_dir=str(tmp_path)),
                ))

    def test_rejects_missing_dataset(self):
        with make_service() as svc:
            with pytest.raises(ValueError, match="not a directory"):
                svc.submit(AnalysisRequest("/nonexistent/path"))

    def test_failed_job_raises_from_result(self, tmp_path):
        # An existing directory that is not a dataset fails at the
        # prepare phase, inside the worker.
        (tmp_path / "junk.txt").write_text("not a dataset")
        with make_service() as svc:
            job = svc.submit(AnalysisRequest(
                str(tmp_path), make_config(), use_cache=False,
            ))
            with pytest.raises(JobError, match="failed"):
                job.result(timeout=120)
            assert job.status == JobStatus.FAILED
            assert job.error is not None

    def test_unknown_job_id(self, dataset_root):
        with make_service() as svc:
            with pytest.raises(KeyError):
                svc.status("j-999999")


class TestCache:
    def test_duplicate_served_from_cache(self, dataset_root, baseline):
        with make_service(workers=1) as svc:
            first = svc.submit(AnalysisRequest(dataset_root, make_config()))
            first.result(timeout=120)
            second = svc.submit(AnalysisRequest(dataset_root, make_config()))
            result = second.result(timeout=120)
            assert result.from_cache_only
            assert result.batch_size == 0
            assert result.cached == ("asm", "idm")
            assert_volumes_equal(result.volumes, baseline)
            assert svc.cache.stats()["hits"] >= 2
            assert svc.metrics.snapshot()["counters"]["service_runs"] == 1

    def test_overlap_computes_only_difference(self, dataset_root):
        with make_service(workers=1) as svc:
            svc.submit(AnalysisRequest(
                dataset_root, make_config(("asm", "idm")),
            )).result(timeout=120)
            job = svc.submit(AnalysisRequest(
                dataset_root, make_config(("idm", "sum_of_squares")),
            ))
            result = job.result(timeout=120)
            assert result.cached == ("idm",)
            assert result.computed == ("sum_of_squares",)
            expected = run_pipeline(
                dataset_root, make_config(("idm", "sum_of_squares"))
            ).volumes
            assert_volumes_equal(result.volumes, expected)

    def test_cache_key_separates_parameters(self, dataset_root):
        with make_service(workers=1) as svc:
            svc.submit(AnalysisRequest(dataset_root, make_config())).result(
                timeout=120
            )
            job = svc.submit(AnalysisRequest(
                dataset_root, make_config(distance=2),
            ))
            assert job.result(timeout=120).computed == ("asm", "idm")

    def test_use_cache_false_bypasses(self, dataset_root):
        with make_service(workers=1) as svc:
            svc.submit(AnalysisRequest(dataset_root, make_config())).result(
                timeout=120
            )
            job = svc.submit(AnalysisRequest(
                dataset_root, make_config(), use_cache=False, batchable=False,
            ))
            assert job.result(timeout=120).computed == ("asm", "idm")

    def test_cache_disabled_service(self, dataset_root):
        with make_service(workers=1, cache_bytes=0) as svc:
            for _ in range(2):
                result = svc.submit(
                    AnalysisRequest(dataset_root, make_config())
                ).result(timeout=120)
                assert result.computed == ("asm", "idm")


class TestBatching:
    def test_identical_jobs_share_passes(self, dataset_root, baseline):
        with make_service(workers=1, batch_max=8) as svc:
            jobs = [
                svc.submit(AnalysisRequest(
                    dataset_root, make_config(),
                    tenant=f"t{i % 2}", use_cache=False,
                ))
                for i in range(6)
            ]
            results = [j.result(timeout=300) for j in jobs]
            for r in results:
                assert_volumes_equal(r.volumes, baseline)
            # The worker popped at most one solo job before the rest
            # were queued, so everything else ran in one batched pass.
            runs = svc.metrics.snapshot()["counters"]["service_runs"]
            assert runs <= 2
            assert any(r.batch_size > 1 for r in results)

    def test_batch_unions_feature_sets(self, dataset_root):
        with make_service(workers=1, batch_max=8) as svc:
            job_a = svc.submit(AnalysisRequest(
                dataset_root, make_config(("asm",)), use_cache=False,
            ))
            job_b = svc.submit(AnalysisRequest(
                dataset_root, make_config(("idm",)), use_cache=False,
            ))
            ra = job_a.result(timeout=300)
            rb = job_b.result(timeout=300)
            assert set(ra.volumes) == {"asm"}
            assert set(rb.volumes) == {"idm"}
            expected = run_pipeline(
                dataset_root, make_config(("asm", "idm"))
            ).volumes
            assert np.array_equal(ra.volumes["asm"], expected["asm"])
            assert np.array_equal(rb.volumes["idm"], expected["idm"])

    def test_non_batchable_jobs_run_alone(self, dataset_root):
        with make_service(workers=1) as svc:
            jobs = [
                svc.submit(AnalysisRequest(
                    dataset_root, make_config(),
                    use_cache=False, batchable=False,
                ))
                for _ in range(3)
            ]
            for j in jobs:
                assert j.result(timeout=300).batch_size == 1
            counters = svc.metrics.snapshot()["counters"]
            assert counters["service_runs"] == 3
            assert "service_batches" not in counters


class TestAdmissionAndFairness:
    def test_saturated_queue_rejects_with_reason(self, dataset_root):
        with make_service(workers=1, max_queued=2) as svc:
            jobs = []
            with pytest.raises(AdmissionError, match="saturated") as exc:
                for _ in range(16):
                    jobs.append(svc.submit(AnalysisRequest(
                        dataset_root, make_config(),
                        use_cache=False, batchable=False,
                    )))
            assert "retry later" in exc.value.reason
            counters = svc.metrics.snapshot()["counters"]
            assert counters["service_rejected{tenant=default}"] >= 1
            for j in jobs:
                j.result(timeout=300)

    def test_rejected_job_not_tracked(self, dataset_root):
        with make_service(workers=1, max_queued=1) as svc:
            jobs = []
            try:
                for _ in range(16):
                    jobs.append(svc.submit(AnalysisRequest(
                        dataset_root, make_config(),
                        use_cache=False, batchable=False,
                    )))
            except AdmissionError:
                pass
            assert len(svc.jobs()) == len(jobs)
            for j in jobs:
                j.result(timeout=300)

    def test_weighted_tenants_both_progress(self, dataset_root, baseline):
        with make_service(
            workers=1, tenant_weights={"gold": 3.0, "bronze": 1.0},
            max_queued=32,
        ) as svc:
            jobs = []
            for i in range(4):
                for tenant in ("gold", "bronze"):
                    jobs.append(svc.submit(AnalysisRequest(
                        dataset_root, make_config(), tenant=tenant,
                        use_cache=False, batchable=False,
                    )))
            for j in jobs:
                assert_volumes_equal(j.result(timeout=600).volumes, baseline)
            waits = svc.metrics.snapshot()["histograms"]
            gold = waits["service_queue_wait_seconds{tenant=gold}"]
            bronze = waits["service_queue_wait_seconds{tenant=bronze}"]
            assert gold["count"] == bronze["count"] == 4
            # Under saturation the heavier tenant drains first.
            assert gold["mean"] <= bronze["mean"]


class TestCancelAndShutdown:
    def test_cancel_queued_job(self, dataset_root):
        with make_service(workers=1) as svc:
            blocker = svc.submit(AnalysisRequest(
                dataset_root, make_config(), use_cache=False, batchable=False,
            ))
            victim = svc.submit(AnalysisRequest(
                dataset_root, make_config(), use_cache=False, batchable=False,
            ))
            cancelled = svc.cancel(victim.id)
            blocker.result(timeout=300)
            if cancelled:  # the worker may have claimed it first
                assert victim.status == JobStatus.CANCELLED
                with pytest.raises(JobError, match="cancelled"):
                    victim.result(timeout=10)
            else:
                victim.result(timeout=300)

    def test_shutdown_cancels_queued_rejects_new(self, dataset_root):
        svc = make_service(workers=1)
        running = svc.submit(AnalysisRequest(
            dataset_root, make_config(), use_cache=False, batchable=False,
        ))
        queued = [
            svc.submit(AnalysisRequest(
                dataset_root, make_config(), use_cache=False, batchable=False,
            ))
            for _ in range(3)
        ]
        svc.shutdown(wait=True, timeout=120)
        assert running.done()
        assert any(j.status == JobStatus.CANCELLED for j in queued) or all(
            j.done() for j in queued
        )
        with pytest.raises(AdmissionError, match="shut down"):
            svc.submit(AnalysisRequest(dataset_root, make_config()))

    def test_stats_shape(self, dataset_root):
        with make_service(workers=1) as svc:
            svc.submit(AnalysisRequest(dataset_root, make_config())).result(
                timeout=120
            )
            stats = svc.stats()
            assert set(stats) == {"queue", "cache", "pool", "jobs", "metrics"}
            assert stats["jobs"][JobStatus.DONE] == 1
            assert stats["pool"]["builds"] == 1

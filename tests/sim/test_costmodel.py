"""Unit tests for the simulation cost model and cluster presets."""

import pytest

from repro.sim.clusters import MBIT, OPTERON, PIII, XEON, ClusterSpec, SimCluster
from repro.sim.costmodel import PAPER_COSTS, CostModel, measure_costs


class TestCostModel:
    def test_hcc_hpc_ratio_in_paper_range(self):
        """Section 5.2: HCC is 4-5x more expensive than HPC."""
        ratio = PAPER_COSTS.hcc_per_roi(False) / PAPER_COSTS.hpc_per_roi(False)
        assert 4.0 <= ratio <= 5.0

    def test_sparse_hurts_hmp_but_helps_hpc(self):
        """Fig. 7a vs. sparse parameter computation."""
        assert PAPER_COSTS.hmp_per_roi(True) > PAPER_COSTS.hmp_per_roi(False)
        assert PAPER_COSTS.hpc_per_roi(True) < PAPER_COSTS.hpc_per_roi(False)

    def test_sparse_wire_collapse(self):
        dense = PAPER_COSTS.matrix_wire_bytes(100, 32, sparse=False)
        sparse = PAPER_COSTS.matrix_wire_bytes(100, 32, sparse=True)
        assert sparse < 0.05 * dense  # ~98% reduction (Section 4.4.1)

    def test_read_time_includes_seeks(self):
        t0 = PAPER_COSTS.read_slice_time(1_000_000)
        t1 = PAPER_COSTS.read_slice_time(1_000_000, seeks=10)
        assert t1 == pytest.approx(t0 + 10 * PAPER_COSTS.disk_seek)

    def test_stitch_time_per_plane(self):
        assert PAPER_COSTS.stitch_time(0, planes=3) == pytest.approx(
            3 * PAPER_COSTS.stitch_per_plane
        )

    def test_feature_wire(self):
        assert PAPER_COSTS.feature_wire_bytes(10, 4) == 10 * 4 * PAPER_COSTS.feature_bytes


class TestMeasureCosts:
    def test_measured_model_is_consistent(self):
        model = measure_costs(levels=16, roi_shape=(4, 4, 4, 2), n_rois=64)
        # Anchored to the paper scale: co-occurrence cost matches anchor.
        assert model.cooc_per_roi == pytest.approx(PAPER_COSTS.cooc_per_roi)
        assert model.feat_full_per_roi > 0
        assert model.feat_sparse_per_roi > 0
        assert model.avg_nnz > 0

    def test_explicit_speedup(self):
        model = measure_costs(
            levels=8, roi_shape=(3, 3, 3, 2), n_rois=32, reference_speedup=1.0
        )
        assert model.cooc_per_roi > 0  # raw measured seconds


class TestClusters:
    def test_paper_specs(self):
        assert PIII.num_nodes == 24 and PIII.cpus_per_node == 1
        assert XEON.num_nodes == 5 and XEON.cpus_per_node == 2
        assert OPTERON.num_nodes == 6 and OPTERON.cpus_per_node == 2
        assert PIII.port_bw == 100 * MBIT
        assert XEON.port_bw == 1000 * MBIT

    def test_piii_preset(self):
        c = SimCluster.piii(8)
        assert len(c.nodes) == 8
        assert c.node("piii03").cluster == "piii"
        assert c.node("piii00").cpu is not None

    def test_heterogeneous_preset(self):
        c = SimCluster.heterogeneous(("xeon", "opteron"))
        assert len(c.cluster_nodes("xeon")) == 5
        assert len(c.cluster_nodes("opteron")) == 6
        # The xeon-opteron gigabit uplink exists; piii links skipped.
        c.network.uplink_utilization("xeon", "opteron", 1.0)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ValueError):
            SimCluster.heterogeneous(("piii", "cray"))

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            SimCluster.piii(4).node("piii99")

    def test_duplicate_specs_rejected(self):
        spec = ClusterSpec("x", 2, 1, 1.0, 100.0)
        with pytest.raises(ValueError):
            SimCluster([spec, spec])

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            ClusterSpec("x", 0, 1, 1.0, 100.0)

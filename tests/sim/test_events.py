"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.events import Environment, Resource, Store


class TestTimeoutsAndProcesses:
    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        assert env.run() == 7.5
        assert log == [5.0, 7.5]

    def test_processes_interleave_deterministically(self):
        env = Environment()
        log = []

        def proc(name, delay):
            for i in range(3):
                yield env.timeout(delay)
                log.append((name, env.now))

        env.process(proc("a", 2.0))
        env.process(proc("b", 3.0))
        env.run()
        # At t=6 both fire; b's timeout was scheduled earlier (t=3 vs
        # t=4), so the deterministic tie-break runs b first.
        assert log == [
            ("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0), ("b", 9.0)
        ]

    def test_tie_break_by_schedule_order(self):
        env = Environment()
        log = []

        def proc(name):
            yield env.timeout(1.0)
            log.append(name)

        env.process(proc("first"))
        env.process(proc("second"))
        env.run()
        assert log == ["first", "second"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_process_return_value(self):
        env = Environment()
        result = []

        def inner():
            yield env.timeout(1)
            return 42

        def outer():
            value = yield env.process(inner())
            result.append(value)

        env.process(outer())
        env.run()
        assert result == [42]

    def test_run_until(self):
        env = Environment()

        def proc():
            while True:
                yield env.timeout(1.0)

        env.process(proc())
        assert env.run(until=10.5) == 10.5

    def test_yield_non_event_raises(self):
        env = Environment()

        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(TypeError):
            env.run()

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield env.timeout(1)
                store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append((item, env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_get_before_put_blocks(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append(env.now)

        def producer():
            yield env.timeout(7)
            store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [7.0]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestResource:
    def test_capacity_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(name):
            yield from res.use(10.0)
            log.append((name, env.now))

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == [("a", 10.0), ("b", 20.0)]

    def test_capacity_two_parallel(self):
        env = Environment()
        res = Resource(env, capacity=2)
        done = []

        def worker():
            yield from res.use(10.0)
            done.append(env.now)

        for _ in range(2):
            env.process(worker())
        env.run()
        assert done == [10.0, 10.0]

    def test_fifo_granting(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(name, start):
            yield env.timeout(start)
            yield from res.use(5.0)
            order.append(name)

        env.process(worker("late", 1.0))
        env.process(worker("later", 2.0))
        env.process(worker("first", 0.0))
        env.run()
        assert order == ["first", "late", "later"]

    def test_release_when_idle_raises(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_utilization(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            yield from res.use(5.0)

        env.process(worker())
        env.run()
        assert res.utilization(10.0) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

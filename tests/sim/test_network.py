"""Unit tests for the simulated network and node models."""

import pytest

from repro.sim.events import Environment
from repro.sim.network import POINTER_COPY_TIME, NetworkModel
from repro.sim.nodes import SimNode


def make_net(port_bw=100.0, latency=0.0):
    env = Environment()
    net = NetworkModel(env)
    nodes = {}
    for name, cluster in (("a0", "a"), ("a1", "a"), ("b0", "b")):
        node = SimNode(name=name, cluster=cluster)
        node.bind(env)
        net.add_node(node, port_bw, latency)
        nodes[name] = node
    net.add_uplink("a", "b", bw=10.0)
    return env, net, nodes


class TestTransfer:
    def test_intra_cluster_bandwidth(self):
        env, net, nodes = make_net(port_bw=100.0)
        done = []

        def proc():
            yield from net.transfer(nodes["a0"], nodes["a1"], 1000)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [pytest.approx(10.0)]  # 1000 B / 100 B/s

    def test_inter_cluster_bottleneck_is_uplink(self):
        env, net, nodes = make_net(port_bw=100.0)
        done = []

        def proc():
            yield from net.transfer(nodes["a0"], nodes["b0"], 1000)
            done.append(env.now)

        env.process(proc())
        env.run()
        # Uplink at 10 B/s dominates: 100 s (+ uplink latency 5e-4).
        assert done[0] == pytest.approx(100.0, abs=0.01)

    def test_pointer_copy_when_colocated(self):
        env, net, nodes = make_net()
        done = []

        def proc():
            yield from net.transfer(nodes["a0"], nodes["a0"], 10**9)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [pytest.approx(POINTER_COPY_TIME)]

    def test_receiver_port_contention(self):
        """Two senders to one receiver serialize on its in-port."""
        env, net, nodes = make_net(port_bw=100.0)
        done = []

        def proc(src):
            yield from net.transfer(nodes[src], nodes["b0"], 100)
            done.append(round(env.now, 4))

        # Use two cluster-b... a0 and a1 both -> b0 via uplink (10 B/s).
        env.process(proc("a0"))
        env.process(proc("a1"))
        env.run()
        assert done == [pytest.approx(10.0, abs=0.01), pytest.approx(20.0, abs=0.01)]

    def test_parallel_disjoint_pairs(self):
        """A switched network runs disjoint node pairs in parallel."""
        env = Environment()
        net = NetworkModel(env)
        nodes = {}
        for name in ("s0", "s1", "r0", "r1"):
            node = SimNode(name=name, cluster="c")
            node.bind(env)
            net.add_node(node, 100.0)
            nodes[name] = node
        done = []

        def proc(src, dst):
            yield from net.transfer(nodes[src], nodes[dst], 1000)
            done.append(env.now)

        env.process(proc("s0", "r0"))
        env.process(proc("s1", "r1"))
        env.run()
        assert done[0] == done[1] == pytest.approx(10.0, abs=0.01)

    def test_traffic_stats(self):
        env, net, nodes = make_net()

        def proc():
            yield from net.transfer(nodes["a0"], nodes["a1"], 500, tag="s")
            yield from net.transfer(nodes["a0"], nodes["a1"], 300, tag="s")

        env.process(proc())
        env.run()
        assert net.stats["s"].transfers == 2
        assert net.stats["s"].bytes == 800

    def test_missing_uplink_rejected(self):
        env = Environment()
        net = NetworkModel(env)
        a = SimNode(name="a0", cluster="a")
        b = SimNode(name="b0", cluster="b")
        for n in (a, b):
            n.bind(env)
            net.add_node(n, 100.0)

        def proc():
            yield from net.transfer(a, b, 10)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()

    def test_negative_bytes_rejected(self):
        env, net, nodes = make_net()

        def proc():
            yield from net.transfer(nodes["a0"], nodes["a1"], -1)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()

    def test_duplicate_node_rejected(self):
        env, net, nodes = make_net()
        with pytest.raises(ValueError):
            net.add_node(nodes["a0"], 100.0)

    def test_duplicate_uplink_rejected(self):
        env, net, nodes = make_net()
        with pytest.raises(ValueError):
            net.add_uplink("b", "a", 5.0)


class TestSimNode:
    def test_compute_time_scales_with_speed(self):
        node = SimNode(name="x", cluster="c", speed=2.0)
        assert node.compute_time(10.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimNode(name="x", cluster="c", cpus=0)
        with pytest.raises(ValueError):
            SimNode(name="x", cluster="c", speed=0)

    def test_cpu_multiplexing(self):
        """Two filters on one CPU serialize; on two CPUs they overlap."""
        for cpus, expected in ((1, 20.0), (2, 10.0)):
            env = Environment()
            node = SimNode(name="x", cluster="c", cpus=cpus)
            node.bind(env)
            done = []

            def worker():
                yield from node.cpu.use(10.0)
                done.append(env.now)

            env.process(worker())
            env.process(worker())
            env.run()
            assert max(done) == pytest.approx(expected)

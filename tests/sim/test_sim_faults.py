"""Simulator-side fault injection: node failures and link degradation.

The DES counterpart of the runtime fault harness — resilience
experiments the paper's testbeds could not run: kill a texture node
mid-run and watch the demand-driven scheduler shift its work to the
survivors, or degrade a port/uplink and measure the makespan cost.
"""

import pytest

from repro.sim.faults import (
    NodeFailure,
    PortDegradation,
    SimFaultPlan,
    UplinkDegradation,
)
from repro.sim.layouts import homogeneous_hmp, homogeneous_split
from repro.sim.simruntime import SimRuntime
from repro.sim.workload import paper_workload


@pytest.fixture(scope="module")
def wl():
    return paper_workload(scale=0.5)


def clean_makespan(wl, layout):
    return SimRuntime(wl, *layout).run().makespan


class TestSimFaultPlan:
    def test_builders_chain(self):
        plan = (
            SimFaultPlan()
            .fail_node("piii4", at=1.0)
            .degrade_port("piii0", at=2.0, factor=0.5)
            .degrade_uplink("piii", "xeon", at=3.0, factor=0.25)
        )
        assert plan.node_failures == [NodeFailure("piii4", 1.0)]
        assert plan.port_degradations == [PortDegradation("piii0", 2.0, 0.5)]
        assert plan.uplink_degradations == [
            UplinkDegradation("piii", "xeon", 3.0, 0.25)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFailure("n", at=-1.0)
        with pytest.raises(ValueError):
            PortDegradation("n", at=0.0, factor=0.0)
        with pytest.raises(ValueError):
            UplinkDegradation("a", "b", at=0.0, factor=1.5)


class TestNodeFailure:
    def test_failed_hmp_node_work_rerouted(self, wl):
        spec, cluster, placement = homogeneous_hmp(4)
        base = clean_makespan(wl, homogeneous_hmp(4))
        victim = placement.node_of("HMP", 0)
        plan = SimFaultPlan().fail_node(victim, at=base * 0.3)
        rep = SimRuntime(
            wl, *homogeneous_hmp(4), faults=plan
        ).run()
        # Every chunk still gets processed: the victim's queued chunks
        # are re-delivered to surviving copies.
        assert rep.stream_buffers["iic2tex"] == len(wl.chunks)
        assert rep.stream_buffers["tex2uso"] == sum(
            len(wl.packets_per_chunk(c)) for c in wl.chunks
        )
        # Losing 1 of 4 texture nodes mid-run cannot make the run faster.
        assert rep.makespan >= base

    def test_failure_counted_in_report(self, wl):
        base = clean_makespan(wl, homogeneous_hmp(4))
        spec, cluster, placement = homogeneous_hmp(4)
        victim = placement.node_of("HMP", 1)
        plan = SimFaultPlan().fail_node(victim, at=base * 0.2)
        rep = SimRuntime(wl, spec, cluster, placement, faults=plan).run()
        assert rep.stream_rerouted["iic2tex"] >= 0
        assert sum(rep.stream_rerouted.values()) >= 0

    def test_deterministic_under_failure(self, wl):
        spec, cluster, placement = homogeneous_hmp(3)
        victim = placement.node_of("HMP", 0)

        def one_run():
            plan = SimFaultPlan().fail_node(victim, at=5.0)
            return SimRuntime(wl, *homogeneous_hmp(3), faults=plan).run().makespan

        assert one_run() == one_run()

    def test_all_texture_nodes_failed_raises(self, wl):
        spec, cluster, placement = homogeneous_hmp(2)
        plan = SimFaultPlan()
        for i in range(2):
            plan.fail_node(placement.node_of("HMP", i), at=0.0)
        with pytest.raises(RuntimeError):
            SimRuntime(wl, spec, cluster, placement, faults=plan).run()

    def test_explicit_iic_failure_raises(self, wl):
        # IIC placement is explicit (chunk pieces must meet at one copy):
        # its node failing is unrecoverable, as in the real runtimes.
        spec, cluster, placement = homogeneous_hmp(2)
        plan = SimFaultPlan().fail_node(placement.node_of("IIC", 0), at=0.0)
        with pytest.raises(RuntimeError):
            SimRuntime(wl, spec, cluster, placement, faults=plan).run()

    def test_unknown_node_rejected_early(self, wl):
        plan = SimFaultPlan().fail_node("nope99", at=1.0)
        with pytest.raises(KeyError):
            SimRuntime(wl, *homogeneous_hmp(2), faults=plan).run()

    def test_split_pipeline_hcc_failure_recovers(self, wl):
        base = clean_makespan(wl, homogeneous_split(5))
        spec, cluster, placement = homogeneous_split(5)
        victim = placement.node_of("HCC", 0)
        plan = SimFaultPlan().fail_node(victim, at=base * 0.3)
        rep = SimRuntime(wl, spec, cluster, placement, faults=plan).run()
        expected = sum(len(wl.packets_per_chunk(c)) for c in wl.chunks)
        assert rep.stream_buffers["tex2uso"] == expected


class TestRouterReroute:
    """Router-level semantics of node failure (below the pipeline)."""

    def _router(self):
        from repro.sim.events import Environment, Store
        from repro.sim.network import NetworkModel
        from repro.sim.nodes import SimNode
        from repro.sim.simfilters import SimBuffer, SimCopy, SimRouter

        env = Environment()
        net = NetworkModel(env)
        nodes = [SimNode(f"n{i}", "c") for i in range(3)]
        for n in nodes:
            n.bind(env)
            net.add_node(n, port_bw=100e6)
        copies = [
            SimCopy("F", i, nodes[i + 1], Store(env)) for i in range(2)
        ]
        router = SimRouter(
            env, net, "s", "round_robin", copies, num_producer_copies=1,
            queue_cap=8,
        )
        return env, nodes, copies, router, SimBuffer

    def test_queued_buffers_pulled_from_failed_store(self):
        env, nodes, copies, router, SimBuffer = self._router()

        def producer():
            for _ in range(6):
                yield from router.send(nodes[0], SimBuffer("chunk", 1000))

        env.process(producer())
        env.run()
        assert len(copies[0].store.items) == 3
        # Node of copy 0 fails with 3 buffers queued and unconsumed.
        copies[0].node.failed = True
        router.on_node_failed(copies[0].node)
        env.run()
        assert router.rerouted == 3
        assert len(copies[0].store.items) == 0
        assert len(copies[1].store.items) == 6
        assert router.buffers_sent == 6  # net accounting survives reroute

    def test_eos_markers_stay_on_failed_copy(self):
        from repro.sim.simfilters import _EOS

        env, nodes, copies, router, SimBuffer = self._router()

        def producer():
            yield from router.send(nodes[0], SimBuffer("chunk", 1000))
            router.broadcast_eos(nodes[0])

        env.process(producer())
        env.run()
        copies[0].node.failed = True
        router.on_node_failed(copies[0].node)
        env.run()
        # Data left, EOS stayed: the failed copy's process can still
        # terminate through the normal EOS path.
        kinds = [b.kind for b in copies[0].store.items]
        assert kinds == [_EOS]


class TestDegradation:
    def test_port_degradation_slows_run(self, wl):
        layout = homogeneous_hmp(4)
        base = clean_makespan(wl, layout)
        spec, cluster, placement = homogeneous_hmp(4)
        victim = placement.node_of("IIC", 0)  # every chunk leaves here
        plan = SimFaultPlan().degrade_port(victim, at=0.0, factor=0.001)
        rep = SimRuntime(wl, spec, cluster, placement, faults=plan).run()
        assert rep.makespan > base

    def test_mild_degradation_bounded(self, wl):
        spec, cluster, placement = homogeneous_hmp(4)
        victim = placement.node_of("HMP", 0)
        plan = SimFaultPlan().degrade_port(victim, at=0.0, factor=0.9)
        rep = SimRuntime(wl, spec, cluster, placement, faults=plan).run()
        base = clean_makespan(wl, homogeneous_hmp(4))
        assert rep.makespan >= base
        assert rep.makespan < base * 2

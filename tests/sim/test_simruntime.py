"""Integration tests: simulated pipeline runs and paper-shape invariants.

These assert the *qualitative* results of the paper's Figs. 7-11 hold in
the simulator at a reduced workload scale (the benchmark harness runs the
full-scale versions).
"""

import pytest

from repro.datacutter.placement import Placement
from repro.sim.clusters import SimCluster
from repro.sim.costmodel import PAPER_COSTS
from repro.sim.layouts import (
    fig10_hmp,
    fig10_split,
    fig11_layout,
    homogeneous_hmp,
    homogeneous_split,
    paper_hcc_hpc_counts,
)
from repro.sim.simruntime import SimPipelineSpec, SimRuntime
from repro.sim.workload import paper_workload


@pytest.fixture(scope="module")
def wl():
    return paper_workload(scale=0.5)


def run(wl, layout):
    return SimRuntime(wl, *layout).run()


class TestBasicExecution:
    def test_runs_to_completion(self, wl):
        rep = run(wl, homogeneous_hmp(2))
        assert rep.makespan > 0
        assert rep.stream_buffers["iic2tex"] == len(wl.chunks)

    def test_all_matrix_packets_delivered(self, wl):
        rep = run(wl, homogeneous_split(3))
        expected = sum(len(wl.packets_per_chunk(c)) for c in wl.chunks)
        assert rep.stream_buffers["hcc2hpc"] == expected
        assert rep.stream_buffers["tex2uso"] == expected

    def test_deterministic(self, wl):
        a = run(wl, homogeneous_hmp(4)).makespan
        b = run(wl, homogeneous_hmp(4)).makespan
        assert a == b

    def test_busy_times_reported(self, wl):
        rep = run(wl, homogeneous_split(4))
        assert set(f for f, _ in rep.busy) == {"RFR", "IIC", "HCC", "HPC", "USO"}
        assert rep.filter_busy_max("HCC") >= rep.filter_busy_mean("HCC") > 0

    def test_missing_placement_rejected(self, wl):
        spec = SimPipelineSpec(variant="hmp", num_tex=2)
        cluster = SimCluster.piii(8)
        placement = Placement()
        with pytest.raises(KeyError):
            SimRuntime(wl, spec, cluster, placement)

    def test_sparse_wire_smaller(self, wl):
        dense = run(wl, homogeneous_split(4, sparse=False))
        sparse = run(wl, homogeneous_split(4, sparse=True))
        assert sparse.stream_bytes["hcc2hpc"] < 0.05 * dense.stream_bytes["hcc2hpc"]


class TestScaling:
    def test_hmp_scales_with_nodes(self, wl):
        times = [run(wl, homogeneous_hmp(n)).makespan for n in (1, 2, 4, 8)]
        assert times[0] > times[1] > times[2] > times[3]
        # Near-linear early on.
        assert times[0] / times[1] > 1.6

    def test_split_sparse_scales(self, wl):
        times = [run(wl, homogeneous_split(n, sparse=True)).makespan for n in (2, 4, 8)]
        assert times[0] > times[1] > times[2]


class TestFig7Shapes:
    def test_fig7a_sparse_hurts_hmp(self, wl):
        """Fig 7a: sparse representation is slower inside HMP."""
        for n in (2, 8):
            full = run(wl, homogeneous_hmp(n, sparse=False)).makespan
            sparse = run(wl, homogeneous_hmp(n, sparse=True)).makespan
            assert sparse > full

    def test_fig7b_sparse_helps_split(self, wl):
        """Fig 7b: sparse representation wins for the split pipeline."""
        for n in (2, 8):
            full = run(wl, homogeneous_split(n, sparse=False)).makespan
            sparse = run(wl, homogeneous_split(n, sparse=True)).makespan
            assert sparse < full / 2  # communication collapse is large


class TestFig8Shapes:
    def test_overlap_beats_no_overlap(self, wl):
        for n in (4, 8):
            no = run(wl, homogeneous_split(n, sparse=True, overlap=False)).makespan
            yes = run(wl, homogeneous_split(n, sparse=True, overlap=True)).makespan
            assert yes < no

    def test_overlap_beats_hmp(self, wl):
        for n in (4, 8):
            hmp = run(wl, homogeneous_hmp(n, sparse=False)).makespan
            yes = run(wl, homogeneous_split(n, sparse=True, overlap=True)).makespan
            assert yes < hmp

    def test_one_node_split_beats_hmp(self, wl):
        """Section 5.2: at one node the split pipeline still wins."""
        hmp = run(wl, homogeneous_hmp(1, sparse=False)).makespan
        split = run(wl, homogeneous_split(1, sparse=True)).makespan
        assert split < hmp


class TestFig9Shapes:
    def test_read_write_negligible(self, wl):
        rep = run(wl, homogeneous_split(8, sparse=True))
        assert rep.filter_busy_mean("RFR") < 0.1 * rep.filter_busy_mean("HCC")
        assert rep.filter_busy_mean("USO") < 0.5 * rep.filter_busy_mean("HCC")

    def test_hcc_several_times_hpc(self, wl):
        """Paper: HCC is 4-5x more expensive than HPC."""
        rep = run(wl, homogeneous_split(8, sparse=False))
        total_hcc = sum(rep.filter_busy("HCC"))
        total_hpc = sum(rep.filter_busy("HPC"))
        assert 3.0 < total_hcc / total_hpc < 6.0

    def test_iic_flat_while_hcc_shrinks(self, wl):
        reps = {n: run(wl, homogeneous_split(n, sparse=True)) for n in (4, 16)}
        iic4 = reps[4].filter_busy_mean("IIC")
        iic16 = reps[16].filter_busy_mean("IIC")
        assert iic16 == pytest.approx(iic4, rel=0.05)  # flat
        assert reps[16].filter_busy_mean("HCC") < 0.5 * reps[4].filter_busy_mean("HCC")
        # Relative weight of the IIC grows -> emerging bottleneck.
        assert iic16 / reps[16].filter_busy_mean("HCC") > (
            iic4 / reps[4].filter_busy_mean("HCC")
        )

    def test_multiple_iic_copies_divide_work(self, wl):
        one = run(wl, homogeneous_split(8, sparse=True, num_iic=1))
        four = run(wl, homogeneous_split(8, sparse=True, num_iic=4))
        per_copy_1 = one.filter_busy_mean("IIC")
        per_copy_4 = four.filter_busy_mean("IIC")
        assert per_copy_4 < 0.4 * per_copy_1  # ~linear decrease (Section 5.2)


class TestHeterogeneousShapes:
    def test_fig10_split_beats_hmp(self, wl):
        hmp = run(wl, fig10_hmp()).makespan
        split = run(wl, fig10_split(sparse=True)).makespan
        assert split < hmp

    def test_fig11_demand_driven_beats_round_robin(self, wl):
        rr = run(wl, fig11_layout("round_robin")).makespan
        dd = run(wl, fig11_layout("demand_driven")).makespan
        assert dd < rr

    def test_fig11_opteron_receives_more_under_dd(self, wl):
        """Paper: OPTERON HCCs receive more packets under demand-driven."""
        spec, cluster, placement = fig11_layout("demand_driven")
        rt = SimRuntime(wl, spec, cluster, placement)
        rep = rt.run()
        # Copies 0-3 are on XEON, 4-7 on OPTERON (see fig11_layout).
        busy = rep.filter_busy("HCC")
        xeon_busy = sum(busy[:4])
        opteron_busy = sum(busy[4:])
        assert opteron_busy > xeon_busy


class TestLayoutHelpers:
    def test_hcc_hpc_ratio(self):
        assert paper_hcc_hpc_counts(16) == (13, 3)
        assert paper_hcc_hpc_counts(10) == (8, 2)
        assert paper_hcc_hpc_counts(1) == (1, 1)

    def test_layout_copy_counts(self, wl):
        spec, cluster, placement = fig10_hmp()
        assert spec.num_tex == 23  # 13 PIII + 2x5 XEON processors
        spec, cluster, placement = fig11_layout("demand_driven")
        assert spec.num_hcc == 8 and spec.num_hpc == 2


class TestReplicatedInput:
    """Paper Section 5.1 footnote 1: replicated dataset, no RFR/IIC."""

    def test_runs_without_input_filters(self, wl):
        from repro.sim.layouts import homogeneous_replicated

        rep = run(wl, homogeneous_replicated(4))
        filters = {f for f, _ in rep.busy}
        assert filters == {"HMP", "USO"}
        assert "rfr2iic" not in rep.stream_buffers
        assert rep.stream_buffers["tex2uso"] == sum(
            len(wl.packets_per_chunk(c)) for c in wl.chunks
        )

    def test_faster_than_disk_resident(self, wl):
        from repro.sim.layouts import homogeneous_hmp, homogeneous_replicated

        standard = run(wl, homogeneous_hmp(8)).makespan
        replicated = run(wl, homogeneous_replicated(8)).makespan
        assert replicated < standard

    def test_all_chunks_processed(self, wl):
        from repro.sim.layouts import homogeneous_replicated

        rep = run(wl, homogeneous_replicated(3))
        # Every HMP copy did real work.
        assert all(b > 0 for b in rep.filter_busy("HMP"))

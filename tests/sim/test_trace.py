"""Unit tests for the simulation trace facility."""

import pytest

from repro.sim import SimRuntime, format_timeline, paper_workload, span_utilization
from repro.sim.layouts import homogeneous_split


@pytest.fixture(scope="module")
def traced():
    wl = paper_workload(scale=0.25)
    spec, cluster, placement = homogeneous_split(3, sparse=True)
    return SimRuntime(wl, spec, cluster, placement, trace=True).run()


class TestTracing:
    def test_spans_disabled_by_default(self):
        wl = paper_workload(scale=0.25)
        rep = SimRuntime(wl, *homogeneous_split(2)).run()
        assert rep.spans is None

    def test_spans_cover_busy_time(self, traced):
        for key, spans in traced.spans.items():
            total = sum(t1 - t0 for t0, t1, _ in spans)
            assert total == pytest.approx(traced.busy[key], rel=1e-9)

    def test_spans_ordered_and_bounded(self, traced):
        for spans in traced.spans.values():
            last = 0.0
            for t0, t1, kind in spans:
                assert 0 <= t0 <= t1 <= traced.makespan + 1e-9
                assert t0 >= last - 1e-12  # non-overlapping service
                last = t1
                assert kind in ("compute", "stitch", "read", "write")

    def test_kinds_match_filters(self, traced):
        by_filter = {}
        for (name, _), spans in traced.spans.items():
            by_filter.setdefault(name, set()).update(k for _, _, k in spans)
        assert by_filter["RFR"] == {"read"}
        assert by_filter["IIC"] == {"stitch"}
        assert by_filter["HCC"] == {"compute"}
        assert by_filter["USO"] == {"write"}


class TestTimelineRendering:
    def test_renders_all_copies(self, traced):
        text = format_timeline(traced.spans, traced.makespan, width=40)
        assert text.count("|") == 2 * len(traced.spans)
        assert "legend" in text
        assert "IIC[00]" in text

    def test_utilization(self):
        assert span_utilization([(0.0, 5.0, "compute")], 10.0) == pytest.approx(0.5)
        assert span_utilization([], 10.0) == 0.0
        assert span_utilization([(0, 20, "compute")], 10.0) == 1.0  # clamped

    def test_validation(self, traced):
        with pytest.raises(ValueError):
            format_timeline(traced.spans, 0.0)
        with pytest.raises(ValueError):
            format_timeline(traced.spans, 1.0, width=2)

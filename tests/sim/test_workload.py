"""Unit tests for the simulation workload description."""

import numpy as np
import pytest

from repro.sim.workload import SimWorkload, paper_workload


class TestPaperWorkload:
    def test_full_scale_geometry(self):
        wl = paper_workload()
        assert wl.dataset_shape == (256, 256, 32, 32)
        assert wl.total_rois == 252 * 252 * 28 * 30
        assert len(wl.chunks) == 36
        assert wl.slice_bytes == 256 * 256 * 2

    def test_scaled(self):
        wl = paper_workload(scale=0.25)
        assert wl.dataset_shape == (64, 64, 8, 8)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_workload(scale=1.5)

    def test_overrides(self):
        wl = paper_workload(num_storage_nodes=8)
        assert wl.num_storage_nodes == 8


class TestDerivedQuantities:
    def test_slices_partition(self):
        wl = paper_workload(scale=0.25)
        seen = set()
        for n in range(wl.num_storage_nodes):
            keys = wl.slices_on_node(n)
            assert seen.isdisjoint(keys)
            seen.update(keys)
        assert len(seen) == wl.num_slices * wl.num_timesteps

    def test_packets_cover_all_scan_positions(self):
        wl = paper_workload(scale=0.25)
        for chunk in wl.chunks:
            counts = wl.packets_per_chunk(chunk)
            local = 1
            for s, r in zip(chunk.shape, wl.roi_shape):
                local *= s - r + 1
            assert sum(counts) == local
            # 1/8 packets -> at most 8 full + 1 remainder.
            assert len(counts) <= 9

    def test_chunk_iic_needs(self):
        wl = paper_workload(scale=0.25)
        for li, chunk in enumerate(wl.chunks):
            planes = (chunk.hi[2] - chunk.lo[2]) * (chunk.hi[3] - chunk.lo[3])
            assert wl.chunk_iic_needs[li] == planes

    def test_rfr_destinations_cover_all_chunks(self):
        wl = paper_workload(scale=0.25)
        dests = wl.rfr_slice_destinations(num_iic_copies=3)
        # Every slice covered by some chunk has at least one destination.
        assert len(dests) == wl.num_slices * wl.num_timesteps
        assert all(0 <= d < 3 for lst in dests.values() for d in lst)

    def test_iic_chunk_assignment_partitions(self):
        wl = paper_workload(scale=0.25)
        all_chunks = set()
        for copy in range(3):
            mine = wl.iic_chunks_of_copy(copy, 3)
            assert all_chunks.isdisjoint(mine)
            all_chunks.update(mine)
        assert all_chunks == set(range(len(wl.chunks)))

    def test_owned_rois_sum_to_total(self):
        wl = paper_workload(scale=0.25)
        assert sum(c.num_rois for c in wl.chunks) == wl.total_rois

    def test_validation(self):
        with pytest.raises(ValueError):
            SimWorkload(num_storage_nodes=0)
        with pytest.raises(ValueError):
            SimWorkload(packet_fraction=0)

"""Unit + integration tests for disk-resident datasets."""

import os

import numpy as np
import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.data.volume import Volume4D
from repro.storage.dataset import DiskDataset4D, node_dir_name, write_dataset
from repro.storage.index import INDEX_FILENAME, NodeIndex


@pytest.fixture
def small_volume():
    return generate_phantom(PhantomConfig(shape=(12, 10, 6, 4), seed=0))


@pytest.fixture
def dataset(tmp_path, small_volume):
    return write_dataset(small_volume, str(tmp_path / "ds"), num_nodes=3)


class TestWriteDataset:
    def test_layout_on_disk(self, tmp_path, small_volume):
        root = str(tmp_path / "ds")
        write_dataset(small_volume, root, num_nodes=3)
        for n in range(3):
            d = os.path.join(root, node_dir_name(n))
            assert os.path.isfile(os.path.join(d, INDEX_FILENAME))
            raws = [f for f in os.listdir(d) if f.endswith(".raw")]
            assert len(raws) == 24 // 3  # 6 slices x 4 steps over 3 nodes

    def test_one_file_per_slice(self, tmp_path, small_volume):
        root = str(tmp_path / "ds")
        write_dataset(small_volume, root, num_nodes=2)
        total = sum(
            len([f for f in os.listdir(os.path.join(root, node_dir_name(n)))
                 if f.endswith(".raw")])
            for n in range(2)
        )
        assert total == 6 * 4

    def test_invalid_node_count(self, tmp_path, small_volume):
        with pytest.raises(ValueError):
            write_dataset(small_volume, str(tmp_path / "x"), num_nodes=0)


class TestOpenAndRead:
    def test_metadata(self, dataset, small_volume):
        assert dataset.shape == small_volume.shape
        assert dataset.num_nodes == 3
        assert dataset.bytes_per_pixel == 2

    def test_read_slice_matches_source(self, dataset, small_volume):
        for t, z in [(0, 0), (3, 5), (2, 1)]:
            assert np.array_equal(dataset.read_slice(t, z), small_volume.get_slice(t, z))

    def test_read_all_round_trip(self, dataset, small_volume):
        assert dataset.read_all() == small_volume

    def test_read_slice_region(self, dataset, small_volume):
        region = dataset.read_slice_region(1, 2, 3, 9, 2, 7)
        assert np.array_equal(region, small_volume.get_slice(1, 2)[3:9, 2:7])

    def test_region_seek_accounting(self, dataset):
        dataset.stats.reset()
        dataset.read_slice(0, 0)
        assert dataset.stats.seeks == 0  # whole slice: sequential read
        dataset.read_slice_region(0, 0, 2, 6, 1, 4)
        assert dataset.stats.seeks == 4  # one seek per row

    def test_read_chunk(self, dataset, small_volume):
        chunk = dataset.read_chunk((2, 8), (1, 9), (1, 4), (0, 3))
        assert np.array_equal(chunk, small_volume.data[2:8, 1:9, 1:4, 0:3])

    def test_read_chunk_node_restricted(self, dataset, small_volume):
        """A node-restricted read returns zeros for remote planes."""
        chunk = dataset.read_chunk((0, 12), (0, 10), (0, 6), (0, 4), nodes=[1])
        for t in range(4):
            for z in range(6):
                plane = chunk[:, :, z, t]
                if dataset.node_of(t, z) == 1:
                    assert np.array_equal(plane, small_volume.data[:, :, z, t])
                else:
                    assert plane.sum() == 0

    def test_union_of_node_reads_covers_everything(self, dataset, small_volume):
        total = np.zeros_like(small_volume.data)
        for n in range(3):
            total += dataset.read_chunk(
                (0, 12), (0, 10), (0, 6), (0, 4), nodes=[n]
            )
        assert np.array_equal(total, small_volume.data)

    def test_invalid_region(self, dataset):
        with pytest.raises(ValueError):
            dataset.read_slice_region(0, 0, 0, 13, 0, 5)
        with pytest.raises(ValueError):
            dataset.read_chunk((0, 2), (0, 2), (0, 9), (0, 2))


class TestOpenValidation:
    def test_missing_root(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DiskDataset4D.open(str(tmp_path / "nope"))

    def test_empty_root(self, tmp_path):
        root = tmp_path / "empty"
        root.mkdir()
        with pytest.raises(FileNotFoundError):
            DiskDataset4D.open(str(root))

    def test_incomplete_nodes_detected(self, tmp_path, small_volume):
        root = str(tmp_path / "ds")
        write_dataset(small_volume, root, num_nodes=3)
        import shutil

        shutil.rmtree(os.path.join(root, node_dir_name(2)))
        with pytest.raises(ValueError):
            DiskDataset4D.open(root)

    def test_duplicate_index_entry_rejected(self):
        idx = NodeIndex(node=0, num_nodes=1, shape=(4, 4, 2, 2), bytes_per_pixel=2)
        idx.add(0, 0, "a.raw")
        with pytest.raises(ValueError):
            idx.add(0, 0, "b.raw")

    def test_index_save_load_round_trip(self, tmp_path):
        idx = NodeIndex(node=1, num_nodes=4, shape=(8, 8, 4, 4), bytes_per_pixel=2)
        idx.add(0, 1, "t0000_z0001.raw")
        idx.add(3, 2, "t0003_z0002.raw")
        idx.save(str(tmp_path))
        back = NodeIndex.load(str(tmp_path))
        assert back.node == 1 and back.num_nodes == 4
        assert back.shape == (8, 8, 4, 4)
        assert back.filename(0, 1) == "t0000_z0001.raw"
        assert back.keys() == [(0, 1), (3, 2)]
        assert (9, 9) not in back
        with pytest.raises(KeyError):
            back.filename(9, 9)

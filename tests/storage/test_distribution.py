"""Unit tests for round-robin slice declustering."""

import pytest

from repro.storage.distribution import (
    assignment_table,
    round_robin_node,
    slices_for_node,
)


class TestRoundRobin:
    def test_within_volume_round_robin(self):
        """Slices of one 3D volume cycle through the nodes (Section 4.2)."""
        nodes = [round_robin_node(0, z, 8, 4) for z in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_continues_across_timesteps(self):
        # 3 slices, 2 nodes: t=0 -> 0,1,0; t=1 continues -> 1,0,1.
        nodes = [round_robin_node(t, z, 3, 2) for t in range(2) for z in range(3)]
        assert nodes == [0, 1, 0, 1, 0, 1]

    def test_single_node(self):
        assert all(round_robin_node(t, z, 4, 1) == 0 for t in range(3) for z in range(4))

    @pytest.mark.parametrize("bad", [(-1, 0), (0, -1), (0, 9)])
    def test_invalid_keys(self, bad):
        with pytest.raises(ValueError):
            round_robin_node(bad[0], bad[1], 9 if bad[1] < 9 else 9, 2)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            round_robin_node(0, 0, 4, 0)


class TestAssignmentTable:
    def test_balanced_distribution(self):
        """Paper dataset (32 x 32 slices on 4 nodes) is perfectly balanced."""
        table = assignment_table(32, 32, 4)
        counts = [0, 0, 0, 0]
        for node in table.values():
            counts[node] += 1
        assert counts == [256, 256, 256, 256]

    def test_near_balance_when_not_divisible(self):
        table = assignment_table(5, 3, 4)  # 15 slices on 4 nodes
        counts = [0] * 4
        for node in table.values():
            counts[node] += 1
        assert max(counts) - min(counts) <= 1


class TestSlicesForNode:
    def test_partition_is_exact(self):
        all_keys = set()
        for n in range(3):
            keys = slices_for_node(n, 4, 5, 3)
            assert all_keys.isdisjoint(keys)
            all_keys.update(keys)
        assert all_keys == {(t, z) for t in range(4) for z in range(5)}

    def test_consistent_with_round_robin(self):
        for n in range(3):
            for t, z in slices_for_node(n, 4, 5, 3):
                assert round_robin_node(t, z, 5, 3) == n

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            slices_for_node(3, 4, 5, 3)

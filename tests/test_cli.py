"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dataset_dir(tmp_path):
    out = str(tmp_path / "ds")
    rc = main(["phantom", "--out", out, "--shape", "16", "14", "6", "4",
               "--nodes", "2", "--seed", "1"])
    assert rc == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze", "dir"])
        assert args.variant == "hmp"
        assert args.levels == 32
        assert args.roi == [5, 5, 5, 3]


class TestPhantomAndInfo:
    def test_phantom_creates_dataset(self, dataset_dir, capsys):
        assert main(["info", dataset_dir]) == 0
        out = capsys.readouterr().out
        assert "(16, 14, 6, 4)" in out
        assert "storage nodes:    2" in out

    def test_dicom_format(self, tmp_path, capsys):
        out = str(tmp_path / "dcm")
        main(["phantom", "--out", out, "--shape", "10", "10", "4", "3",
              "--format", "dicom", "--nodes", "1"])
        main(["info", out])
        assert "dicom" in capsys.readouterr().out


class TestAnalyze:
    def test_hmp_analysis(self, dataset_dir, capsys):
        rc = main([
            "analyze", dataset_dir, "--levels", "8", "--roi", "3", "3", "3", "2",
            "--features", "asm", "--copies", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "asm" in out and "elapsed" in out

    def test_split_analysis_with_images(self, dataset_dir, tmp_path, capsys):
        images = str(tmp_path / "imgs")
        rc = main([
            "analyze", dataset_dir, "--variant", "split", "--levels", "8",
            "--roi", "3", "3", "3", "2", "--features", "asm", "idm",
            "--copies", "3", "--images-out", images,
        ])
        assert rc == 0
        import os

        assert os.path.isdir(os.path.join(images, "asm"))


class TestAnalyzeRuntimes:
    def test_distributed_over_loopback_agents(self, dataset_dir, capsys):
        rc = main([
            "analyze", dataset_dir, "--levels", "8", "--roi", "3", "3", "3", "2",
            "--features", "asm", "--copies", "2",
            "--runtime", "distributed", "--agents", "3",
        ])
        assert rc == 0
        assert "asm" in capsys.readouterr().out

    def test_hosts_without_distributed_rejected(self, dataset_dir, capsys):
        rc = main([
            "analyze", dataset_dir, "--hosts", "127.0.0.1",
        ])
        assert rc == 2
        assert "--runtime distributed" in capsys.readouterr().err

    def test_hosts_and_agents_mutually_exclusive(self, dataset_dir, capsys):
        rc = main([
            "analyze", dataset_dir, "--runtime", "distributed",
            "--hosts", "127.0.0.1", "--agents", "2",
        ])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_runtime_choices(self):
        args = build_parser().parse_args(
            ["analyze", "dir", "--runtime", "processes"])
        assert args.runtime == "processes"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "dir", "--runtime", "magic"])


class TestSimulate:
    @pytest.mark.parametrize("figure", ["7a", "7b", "8", "9", "10", "11"])
    def test_figures_run(self, figure, capsys):
        rc = main(["simulate", "--figure", figure, "--scale", "0.25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "workload" in out

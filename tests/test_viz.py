"""Unit tests for the visualization helpers."""

import csv

import numpy as np
import pytest

from repro.viz.colormap import COLORMAPS, apply_colormap, save_colormap_ppm, write_ppm
from repro.viz.curves import time_intensity_curve, write_curves_csv
from repro.viz.montage import montage, save_montage_pgm


@pytest.fixture
def volume():
    rng = np.random.default_rng(0)
    return rng.integers(0, 4096, size=(6, 5, 3, 4)).astype(np.uint16)


class TestCurves:
    def test_curve_values(self, volume):
        curve = time_intensity_curve(volume, (2, 3, 1))
        assert curve.shape == (4,)
        assert np.array_equal(curve, volume[2, 3, 1, :].astype(float))

    def test_bad_voxel(self, volume):
        with pytest.raises(IndexError):
            time_intensity_curve(volume, (9, 0, 0))

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            time_intensity_curve(np.zeros((4, 4)), (0, 0, 0))

    def test_csv_round_trip(self, volume, tmp_path):
        path = str(tmp_path / "curves.csv")
        curves = write_curves_csv(path, volume, [(0, 0, 0), (2, 3, 1)])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["t", "0_0_0", "2_3_1"]
        assert len(rows) == 1 + 4
        assert float(rows[1][2]) == curves[(2, 3, 1)][0]

    def test_empty_voxels_rejected(self, volume, tmp_path):
        with pytest.raises(ValueError):
            write_curves_csv(str(tmp_path / "x.csv"), volume, [])


class TestMontage:
    def test_grid_geometry(self, volume):
        img = montage(volume, border=1)
        nx, ny, nz, nt = volume.shape
        assert img.shape == (nz * nx + (nz - 1), nt * ny + (nt - 1))
        assert img.min() >= 0 and img.max() <= 1

    def test_tiles_match_slices(self, volume):
        img = montage(volume, border=0)
        nx, ny = volume.shape[:2]
        vmin, vmax = volume.min(), volume.max()
        tile = img[nx : 2 * nx, 0:ny]  # z=1, t=0
        want = (volume[:, :, 1, 0] - vmin) / (vmax - vmin)
        np.testing.assert_allclose(tile, want)

    def test_constant_volume(self):
        img = montage(np.ones((2, 2, 2, 2)))
        assert np.all((img == 0) | (img == 0.5))  # tiles black, borders gray

    def test_save_pgm(self, volume, tmp_path):
        path = str(tmp_path / "m.pgm")
        shape = save_montage_pgm(path, volume)
        from repro.data.formats import read_pgm

        assert read_pgm(path).shape == shape

    def test_invalid_inputs(self, volume):
        with pytest.raises(ValueError):
            montage(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            montage(volume, border=-1)


class TestColormap:
    def test_shapes_and_dtype(self):
        img = np.linspace(0, 1, 20).reshape(4, 5)
        rgb = apply_colormap(img, "hot")
        assert rgb.shape == (4, 5, 3)
        assert rgb.dtype == np.uint8

    def test_endpoints(self):
        rgb = apply_colormap(np.array([[0.0, 1.0]]), "hot")
        assert list(rgb[0, 0]) == [0, 0, 0]  # black at min
        assert list(rgb[0, 1]) == [255, 255, 255]  # white at max

    def test_gray_is_identity_ramp(self):
        img = np.array([[0.0, 0.5, 1.0]])
        rgb = apply_colormap(img, "gray")
        assert list(rgb[0, :, 0]) == [0, 128, 255]
        assert np.array_equal(rgb[..., 0], rgb[..., 1])

    @pytest.mark.parametrize("name", sorted(COLORMAPS))
    def test_all_colormaps_valid(self, name):
        rgb = apply_colormap(np.random.default_rng(0).random((3, 3)), name)
        assert rgb.min() >= 0 and rgb.max() <= 255

    def test_unknown_colormap(self):
        with pytest.raises(ValueError):
            apply_colormap(np.zeros((2, 2)), "viridis")

    def test_ppm_file(self, tmp_path):
        path = str(tmp_path / "x.ppm")
        save_colormap_ppm(path, np.linspace(0, 1, 12).reshape(3, 4), "coolwarm")
        with open(path, "rb") as fh:
            raw = fh.read()
        assert raw.startswith(b"P6\n4 3\n255\n")
        assert len(raw) == len(b"P6\n4 3\n255\n") + 3 * 4 * 3

    def test_write_ppm_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "x.ppm"), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "x.ppm"), np.zeros((2, 2, 3), dtype=float))

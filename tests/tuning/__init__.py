"""Tests for repro.tuning: profiles, cost model, controller, sweep."""

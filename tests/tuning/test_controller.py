"""Online controller: bounds, decisions, events, and bit-identity.

The decision logic is tested synchronously against duck-typed fake
edges (the controller never imports the runtime, so neither do these
tests).  The integration tests then pin the property that makes online
adaptation safe to ship: enabling it — even together with injected
faults — cannot change a single output bit, only timing.
"""

import threading

import numpy as np
import pytest

from repro.tuning import AdaptationBounds, OnlineController


class FakeValue:
    def __init__(self, v):
        self.value = v


class FakeEdge:
    def __init__(self, num_consumers=4, max_queue=16, credit=4, depths=None):
        self.num_consumers = num_consumers
        self.max_queue = max_queue
        self.credit = FakeValue(credit)
        self.active = [1] * num_consumers
        self.queued = list(depths or [0] * num_consumers)
        self.lock = threading.Lock()


def controller(edges, **bounds_kwargs):
    return OnlineController(
        edges, AdaptationBounds(**bounds_kwargs), FakeValue(0)
    )


class TestBounds:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"min_credit": 0},
            {"min_credit": 4, "max_credit": 2},
            {"min_active": 0},
            {"low_water": 0.5, "high_water": 0.5},
            {"low_water": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptationBounds(**kwargs)

    def test_defaults_valid(self):
        b = AdaptationBounds()
        assert b.min_credit >= 1 and b.low_water < b.high_water


class TestDecisions:
    def test_backlog_widens_credit(self):
        edge = FakeEdge(credit=4, depths=[4, 4, 4, 4])
        c = controller({"e": edge})
        c._tick_edge("e", edge)
        assert edge.credit.value == 8
        (ev,) = c.drain_events()
        assert ev.kind == "tune.adjust"
        assert ev.attrs["knob"] == "credit"
        assert ev.attrs["old"] == 4 and ev.attrs["new"] == 8

    def test_credit_capped_at_max_queue(self):
        edge = FakeEdge(credit=16, max_queue=16, depths=[16] * 4)
        c = controller({"e": edge})
        c._tick_edge("e", edge)
        assert edge.credit.value == 16
        # No adjustment possible -> no event.
        assert not [e for e in c.drain_events()
                    if e.attrs.get("knob") == "credit"]

    def test_idle_narrows_credit_to_floor(self):
        edge = FakeEdge(credit=4, depths=[0, 0, 0, 0])
        c = controller({"e": edge}, min_credit=2)
        c._tick_edge("e", edge)
        assert edge.credit.value == 2
        c._tick_edge("e", edge)
        assert edge.credit.value == 2  # never below min_credit

    def test_idle_deactivates_keeping_deepest(self):
        edge = FakeEdge(credit=8, depths=[3, 0, 0, 0])
        c = controller({"e": edge})
        c._tick_edge("e", edge)
        assert list(edge.active) == [1, 0, 0, 0]
        assert any(
            ev.attrs.get("knob") == "active" and ev.attrs["new"] == 1
            for ev in c.drain_events()
        )

    def test_min_active_respected(self):
        edge = FakeEdge(credit=8, depths=[0, 0, 0, 0])
        c = controller({"e": edge}, min_active=3)
        c._tick_edge("e", edge)
        assert sum(edge.active) == 3

    def test_backlog_reactivates_all(self):
        edge = FakeEdge(credit=2, depths=[2, 2, 2, 2])
        edge.active = [1, 0, 0, 1]
        c = controller({"e": edge})
        c._tick_edge("e", edge)
        assert list(edge.active) == [1, 1, 1, 1]

    def test_edges_without_credit_ignored(self):
        class Plain:
            credit = None

        c = controller({"plain": Plain()})
        assert c.edges == {}

    def test_adjustment_counter(self):
        edge = FakeEdge(credit=4, depths=[4, 4, 4, 4])
        c = controller({"e": edge})
        c._tick_edge("e", edge)
        assert c.adjustments >= 1

    def test_thread_lifecycle(self):
        edge = FakeEdge(credit=4, depths=[4, 4, 4, 4])
        c = controller({"e": edge}, interval=0.005)
        c.start()
        deadline = threading.Event()
        deadline.wait(0.1)
        c.stop()
        assert edge.credit.value > 4  # it ticked at least once


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    from repro.data.synthetic import PhantomConfig, generate_phantom
    from repro.storage.dataset import write_dataset

    root = str(tmp_path_factory.mktemp("tune_ds") / "ds")
    vol = generate_phantom(PhantomConfig(shape=(24, 24, 8, 4), seed=11))
    write_dataset(vol, root, num_nodes=2)
    return root


class TestBitIdentity:
    def _volumes(self, dataset, **kwargs):
        from repro.pipeline.config import AnalysisConfig
        from repro.pipeline.run import run_pipeline

        cfg = AnalysisConfig(num_texture_copies=2)
        res = run_pipeline(dataset, cfg, runtime="processes",
                           run_timeout=120, **kwargs)
        return res.volumes

    def test_autotune_output_bit_identical(self, dataset):
        plain = self._volumes(dataset)
        tuned = self._volumes(
            dataset, autotune=AdaptationBounds(interval=0.005)
        )
        assert set(plain) == set(tuned)
        for name in plain:
            assert np.array_equal(plain[name], tuned[name]), name

    def test_autotune_bit_identical_under_faults(self, dataset):
        from repro.datacutter.faults import FaultPlan

        plain = self._volumes(dataset)
        faulted = self._volumes(
            dataset,
            autotune=AdaptationBounds(interval=0.005),
            faults=FaultPlan().crash_copy("HMP", copy_index=1,
                                          after_buffers=1),
        )
        for name in plain:
            assert np.array_equal(plain[name], faulted[name]), name

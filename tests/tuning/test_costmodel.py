"""Cost model: feature extraction, fitting, ranking, measured override."""

import pytest

from repro.tuning import fit_cost_model
from repro.tuning.costmodel import candidate_key, record_features


def make_record(service, wait, moved, elapsed, kernel="incremental",
                transport="pipe", copies=None, chunk=(16, 16, 8, 4)):
    copies = copies or {"texture": 2}
    workers = sum(copies.values())
    return {
        "candidate": {
            "chunk_shape": chunk,
            "copies": copies,
            "transport": transport,
            "kernel": kernel,
        },
        "elapsed": elapsed,
        "snapshot": {
            "counters": {"wire_bytes{stream=a}": moved},
            "gauges": {},
            "histograms": {
                # service is given per-worker; the snapshot carries the
                # total across copies.
                "busy_seconds{filter=HMP}": {"sum": service * workers},
                "queue_wait_seconds{filter=HMP}": {"sum": wait},
            },
        },
    }


class TestFeatures:
    def test_record_features(self):
        rec = make_record(service=2.0, wait=0.5, moved=3e9, elapsed=2.6,
                          copies={"texture": 2})
        feats = record_features(rec)
        assert feats["service_per_worker"] == pytest.approx(2.0)
        assert feats["queue_wait"] == pytest.approx(0.5)
        assert feats["gbytes_moved"] == pytest.approx(3.0)

    def test_candidate_key_is_stable(self):
        a = {"chunk_shape": (8, 8, 4, 2), "copies": {"b": 1, "a": 2},
             "transport": "pipe", "kernel": "k"}
        b = {"chunk_shape": (8, 8, 4, 2), "copies": {"a": 2, "b": 1},
             "transport": "pipe", "kernel": "k"}
        assert candidate_key(a) == candidate_key(b)


class TestFit:
    def test_recovers_planted_coefficients(self):
        # elapsed = 1.5 * service_per_worker + 2.0 * wait + 0.1
        records = []
        for i, (s, w) in enumerate(
            [(1.0, 0.1), (2.0, 0.2), (0.5, 0.4), (3.0, 0.05), (1.5, 0.3)]
        ):
            records.append(
                make_record(service=s, wait=w, moved=0,
                            elapsed=1.5 * s + 2.0 * w + 0.1,
                            copies={"texture": i + 1})
            )
        model = fit_cost_model(records)
        assert model.coef["service_per_worker"] == pytest.approx(1.5, abs=0.05)
        assert model.coef["queue_wait"] == pytest.approx(2.0, abs=0.1)
        assert model.residual < 0.01
        assert model.n_records == len(records)

    def test_predict_prefers_measured(self):
        rec = make_record(service=1.0, wait=0.0, moved=0, elapsed=42.0)
        model = fit_cost_model([rec, make_record(2.0, 0.1, 0, 3.0,
                                                 copies={"texture": 1})])
        assert model.predict(rec) == pytest.approx(42.0)

    def test_predict_interpolates_unseen(self):
        records = [
            make_record(s, 0.0, 0, 1.0 * s, copies={"texture": n})
            for n, s in [(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]
        ]
        model = fit_cost_model(records)
        unseen = make_record(2.5, 0.0, 0, elapsed=None,
                             copies={"texture": 5})
        del unseen["elapsed"]
        assert model.predict(unseen) == pytest.approx(2.5, abs=0.2)

    def test_rank_orders_fastest_first(self):
        slow = make_record(3.0, 0.5, 0, 4.0, copies={"texture": 1})
        fast = make_record(1.0, 0.1, 0, 1.2, copies={"texture": 2})
        model = fit_cost_model([slow, fast])
        ranked = model.rank([slow, fast])
        assert ranked[0][1] is fast and ranked[1][1] is slow

    def test_negative_coefficients_clamped(self):
        # Anti-physical data (more service -> faster) must not produce a
        # negative compute coefficient.
        records = [
            make_record(s, 0.0, 0, elapsed=5.0 - s, copies={"texture": n})
            for n, s in [(1, 1.0), (2, 2.0), (3, 3.0)]
        ]
        model = fit_cost_model(records)
        assert model.coef["service_per_worker"] >= 0.0

    def test_zero_records_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_model([])

"""TuningProfile: validation, application, JSON round-trip."""

import json

import pytest

from repro.pipeline.config import AnalysisConfig
from repro.tuning import PROFILE_VERSION, TuningProfile, load_profile


class TestValidation:
    def test_defaults_are_a_no_op_profile(self):
        p = TuningProfile()
        cfg = AnalysisConfig()
        assert p.apply(cfg) is cfg
        assert p.runtime_kwargs() == {}

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            TuningProfile(version=PROFILE_VERSION + 1)

    def test_rejects_unknown_copies_key(self):
        with pytest.raises(ValueError, match="copies key"):
            TuningProfile(copies={"warp_drive": 2})

    def test_rejects_non_positive_copies(self):
        with pytest.raises(ValueError, match=">= 1"):
            TuningProfile(copies={"texture": 0})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown profile fields"):
            TuningProfile.from_dict({"chunk_shape": [8, 8, 4, 2],
                                     "warp": 9})


class TestApply:
    def test_sets_chunk_copies_kernel_scheduling(self):
        p = TuningProfile(
            chunk_shape=(8, 8, 4, 2),
            copies={"texture": 3, "iic": 2},
            kernel="megabatch",
            scheduling="round_robin",
        )
        cfg = p.apply(AnalysisConfig())
        assert cfg.texture_chunk_shape == (8, 8, 4, 2)
        assert cfg.num_texture_copies == 3
        assert cfg.num_iic_copies == 2
        assert cfg.texture.kernel == "megabatch"
        assert cfg.scheduling == "round_robin"

    def test_unset_fields_keep_input_config(self):
        base = AnalysisConfig(num_texture_copies=5)
        cfg = TuningProfile(kernel="megabatch").apply(base)
        assert cfg.num_texture_copies == 5
        assert cfg.variant == base.variant

    def test_runtime_kwargs(self):
        p = TuningProfile(transport="shm", max_queue=8, runtime="processes")
        assert p.runtime_kwargs() == {
            "transport": "shm", "max_queue": 8, "runtime": "processes",
        }


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        p = TuningProfile(
            chunk_shape=(16, 16, 8, 4),
            copies={"texture": 2},
            transport="shm",
            kernel="incremental",
            max_queue=16,
            runtime="processes",
            meta={"pilot": {"shape": [24, 24, 8, 4]}},
        )
        path = str(tmp_path / "prof.json")
        p.save(path)
        q = load_profile(path)
        assert q == p

    def test_saved_json_is_plain(self, tmp_path):
        path = str(tmp_path / "prof.json")
        TuningProfile(chunk_shape=(8, 8, 4, 2)).save(path)
        with open(path) as fh:
            d = json.load(fh)
        assert d["chunk_shape"] == [8, 8, 4, 2]
        assert d["version"] == PROFILE_VERSION

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_profile(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_profile(str(path))

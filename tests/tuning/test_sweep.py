"""Offline sweep driver: pilot runs, selection, profile emission."""

import pytest

from repro.tuning import PilotSpec, TuningProfile, run_sweep
from repro.tuning.sweep import default_grid

TINY_GRID = {
    "chunk_shape": [(16, 16, 8, 4)],
    "copies": [{"texture": 1}, {"texture": 2}],
    "transport": [None],
    "kernel": ["incremental"],
}


class TestPilotSpec:
    def test_rejects_unknown_runtime(self):
        with pytest.raises(ValueError, match="runtime"):
            PilotSpec(runtime="distributed")

    def test_default_grid_shapes(self):
        g = default_grid("threads")
        assert g["transport"] == [None]
        assert default_grid("processes")["transport"] == ["pipe", "shm"]


class TestRunSweep:
    @pytest.fixture(scope="class")
    def result(self):
        spec = PilotSpec(
            phantom_shape=(16, 16, 8, 4), runtime="threads", seed=3
        )
        lines = []
        res = run_sweep(spec, grid=TINY_GRID, progress=lines.append)
        res._progress_lines = lines
        return res

    def test_every_candidate_measured(self, result):
        assert len(result.records) == 2
        for rec in result.records:
            assert rec["elapsed"] > 0
            assert rec["snapshot"]["histograms"]
        assert len(result._progress_lines) == 2

    def test_bit_identical_across_candidates(self, result):
        assert result.bit_identical

    def test_profile_selected_and_loadable(self, result):
        p = result.profile
        assert isinstance(p, TuningProfile)
        assert p.copies["texture"] in (1, 2)
        assert p.runtime == "threads"
        assert p.kernel == "incremental"

    def test_profile_meta_has_provenance(self, result):
        meta = result.profile.meta
        assert meta["pilot"]["runtime"] == "threads"
        assert len(meta["candidates"]) == 2
        assert meta["selected_elapsed"] <= max(
            c["elapsed"] for c in meta["candidates"]
        )
        assert "model" in meta

    def test_selected_no_slower_than_measured_baseline(self, result):
        # The tuner's pick is the fastest *measured* candidate; the
        # baseline run (hand-picked defaults) is measured the same way.
        # Allow generous scheduling noise — the guarantee under test is
        # "selection uses the measurements", not machine speed.
        assert result.best_elapsed <= result.baseline_elapsed * 2.0

    def test_summary_mentions_counts(self, result):
        s = result.summary()
        assert "2 candidates" in s

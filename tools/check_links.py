#!/usr/bin/env python
"""Markdown link checker for the repo's documentation.

Scans the given markdown files (or the default doc set) for inline
links and reference-style definitions, and verifies that every
*relative* link target exists on disk, resolved against the linking
file's directory.  Anchors (``page.md#section``) are checked for file
existence only; external links (``http://``, ``https://``, ``mailto:``)
are skipped — CI must not depend on the network.

Exit status: 0 when every link resolves, 1 otherwise (each broken link
is reported as ``file: target``).

Usage::

    python tools/check_links.py                  # default doc set
    python tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_FILES = (
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "EXPERIMENTS.md",
    "docs/architecture.md",
    "docs/userguide.md",
    "docs/middleware.md",
    "docs/data-layer.md",
    "docs/kernels.md",
    "docs/simulator.md",
    "docs/observability.md",
    "docs/scenarios.md",
    "docs/service.md",
    "docs/tuning.md",
)

#: Inline links/images: [text](target) — target ends at the first
#: unnested ')' ; titles ("...") are stripped afterwards.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Fenced code blocks are excluded from scanning.
_FENCE = re.compile(r"```.*?```", re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def extract_links(text: str) -> List[str]:
    text = _FENCE.sub("", text)
    return _INLINE.findall(text) + _REFDEF.findall(text)


def check_file(path: str) -> List[Tuple[str, str]]:
    """Return ``[(path, broken_target), ...]`` for one markdown file."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.dirname(os.path.abspath(path))
    broken = []
    for target in extract_links(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(base, rel))
        if not os.path.exists(resolved):
            broken.append((path, target))
    return broken


def main(argv: Iterable[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    files = args or [
        os.path.join(REPO_ROOT, f)
        for f in DEFAULT_FILES
        if os.path.exists(os.path.join(REPO_ROOT, f))
    ]
    broken: List[Tuple[str, str]] = []
    checked = 0
    for path in files:
        broken.extend(check_file(path))
        checked += 1
    for path, target in broken:
        print(f"BROKEN {os.path.relpath(path, REPO_ROOT)}: {target}",
              file=sys.stderr)
    print(f"checked {checked} files, {len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())

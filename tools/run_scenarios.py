#!/usr/bin/env python
"""Run the declarative chaos-scenario suite against the real runtimes.

Usage::

    PYTHONPATH=src python tools/run_scenarios.py               # whole suite
    PYTHONPATH=src python tools/run_scenarios.py scenarios/agent_crash.json
    PYTHONPATH=src python tools/run_scenarios.py --only join   # name filter
    PYTHONPATH=src python tools/run_scenarios.py --report report.json

Each scenario builds its own seeded synthetic dataset, runs the
distributed pipeline over loopback agents with the scenario's membership
schedule and fault plan, and checks the output bit-identical against the
sequential baseline plus the scenario's expectations.  Exit status is 0
only if every selected scenario passed.  ``--report`` writes the
machine-readable JSON report CI archives as an artifact.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.scenarios import (  # noqa: E402
    load_scenario,
    load_scenarios,
    run_suite,
    write_report,
)

DEFAULT_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "scenarios"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run declarative chaos scenarios for the distributed "
        "runtime"
    )
    parser.add_argument(
        "paths", nargs="*",
        help="scenario files to run (default: every file in scenarios/)",
    )
    parser.add_argument(
        "--dir", default=DEFAULT_DIR,
        help="scenario directory when no files are given",
    )
    parser.add_argument(
        "--only", metavar="SUBSTR",
        help="run only scenarios whose name contains SUBSTR",
    )
    parser.add_argument(
        "--report", metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.paths:
        specs = [load_scenario(p) for p in args.paths]
    else:
        specs = load_scenarios(args.dir)
    if args.only:
        specs = [s for s in specs if args.only in s.name]
        if not specs:
            print(f"no scenario name contains {args.only!r}", file=sys.stderr)
            return 2
    if args.list:
        for s in specs:
            print(f"{s.name:<24} {s.description}")
        return 0

    results = run_suite(specs)
    if args.report:
        write_report(results, args.report)
        print(f"report written to {args.report}")
    failed = [r for r in results if not r.passed]
    print(
        f"{len(results) - len(failed)}/{len(results)} scenarios passed"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
